// sbx-lint: out-of-scope(raw-alloc, engine control plane; allocations here are per-task and per-window bookkeeping, record data stays in simmem pools)
use sbx_ingress::{IngestFormat, IngressEvent, Sender, SenderConfig, Source};
use sbx_obs::{Obs, Span};
use sbx_records::Watermark;
use sbx_simmem::{AccessProfile, AllocError, MachineConfig, MemEnv, MemKind};

use crate::checkpoint::{
    CheckpointBarrier, CheckpointHooks, CrashPhase, CrashSite, NoopHooks, PipelineSnapshot,
};
use crate::observe::{OpMetrics, RunMetrics};
use crate::{
    DemandBalancer, EngineError, EngineMode, ImpactTag, Message, Pipeline, RoundSample, RunReport,
    StreamData,
};

/// Configuration of one engine run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The modelled machine. Defaults to the paper's KNL scaled to 1/256
    /// capacity (64 MiB HBM / 384 MiB DRAM) so capacity dynamics are
    /// observable at test scale; figure harnesses pass the full machine.
    pub machine: MachineConfig,
    /// Modelled cores the engine may use (the x-axis of most figures).
    pub cores: u32,
    /// Memory-management mode (the Figure 9 ablation axis).
    pub mode: EngineMode,
    /// Ingestion configuration (bundle size, watermark cadence, NIC).
    pub sender: SenderConfig,
    /// Target output delay in seconds (the paper evaluates under 1 s).
    pub target_delay_secs: f64,
    /// Host threads for parallel primitives (functional parallelism only;
    /// modelled parallelism comes from `cores`).
    pub threads: usize,
    /// Whether to keep sink output bundles in the report.
    pub collect_outputs: bool,
    /// Whether to record the executed task graph (profiles + chain
    /// dependencies) for replay on the fluid simulator
    /// ([`RunReport::replay`]).
    pub record_trace: bool,
    /// Encoding of records on the ingestion wire (paper §7.4): non-`Raw`
    /// formats are decoded for real per bundle and their parse cost is
    /// charged to the pipeline.
    pub ingest_format: IngestFormat,
    /// Observability sinks (DESIGN.md §10). The default no-op handles cost
    /// nothing; [`sbx_obs::Obs::enabled`] collects per-operator/per-pool
    /// metrics and a span per operator invocation. Tracing forces the
    /// stateless prefix to run serially so span order is deterministic;
    /// metrics alone keep data parallelism eligible.
    pub obs: Obs,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            machine: MachineConfig::knl().scaled(1.0 / 256.0),
            cores: 64,
            mode: EngineMode::Hybrid,
            sender: SenderConfig::default(),
            target_delay_secs: 1.0,
            threads: 2,
            collect_outputs: false,
            record_trace: false,
            ingest_format: IngestFormat::Raw,
            obs: Obs::noop(),
        }
    }
}

/// Engine-level CPU cycles charged per record per operator invocation:
/// scheduling, work tracking and allocation overheads beyond the raw
/// primitive costs (see [`Engine::drive_chain`]).
pub const ENGINE_OVERHEAD_CYCLES: f64 = 75.0;

#[derive(Debug, Default)]
struct Round {
    profile: AccessProfile,
    close_profile: AccessProfile,
    max_task_secs: f64,
    ingest_ns: u64,
    records: u64,
    closed_windows: u64,
}

/// The StreamBox-HBM runtime: pulls bundles from a sender, drives them
/// through the operator pipeline, places KPAs via the demand balancer, and
/// accounts simulated time per watermark round.
///
/// Execution is functionally exact (every record flows through the real
/// primitives); *timing* comes from the calibrated cost model evaluated at
/// the configured core count, with ingestion overlapping computation — see
/// DESIGN.md §6.
#[derive(Debug)]
pub struct Engine {
    cfg: RunConfig,
    env: MemEnv,
    balancer: DemandBalancer,
    /// Worker pool shared by every task context of the run (clones share
    /// spawn statistics); sized once from `cfg.threads`.
    pool: sbx_kpa::WorkerPool,
    trace: Vec<sbx_simmem::TaskSpec>,
    /// Shared id counter for replay tasks and trace spans: when both are
    /// recorded, a span and its task share one identity.
    next_task: u64,
    /// Watermark round currently being accumulated (0-based); stamped onto
    /// spans so traces align with the per-round series.
    cur_round: u64,
    /// Checkpoint epoch currently in effect (0 before the first barrier);
    /// stamped onto spans so cluster traces can cut per-epoch chains.
    cur_epoch: u64,
    /// Run-level instruments; always live so report statistics derive from
    /// them (see [`crate::observe`]).
    rm: RunMetrics,
    /// Per-operator instruments in chain order, built per run; inert when
    /// observability is off.
    op_metrics: Vec<OpMetrics>,
}

impl Engine {
    /// An engine for `cfg` with fresh memory pools.
    pub fn new(cfg: RunConfig) -> Self {
        let machine = cfg.machine.with_cores(cfg.cores);
        let env = MemEnv::new_observed(machine, &cfg.obs.metrics);
        let balancer = DemandBalancer::new().with_metrics(&cfg.obs.metrics);
        let rm = RunMetrics::for_run(&cfg.obs.metrics);
        let pool = sbx_kpa::WorkerPool::new(cfg.threads);
        Engine {
            cfg,
            env,
            balancer,
            pool,
            trace: Vec::new(),
            next_task: 0,
            cur_round: 0,
            cur_epoch: 0,
            rm,
            op_metrics: Vec::new(),
        }
    }

    /// The engine's hybrid-memory environment.
    pub fn env(&self) -> &MemEnv {
        &self.env
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Runs `pipeline` over `bundles` bundles pulled from `source`.
    ///
    /// A final watermark flush closes all remaining windows so the report
    /// covers every ingested record.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if memory is exhausted beyond recovery or
    /// the pipeline is misconfigured.
    pub fn run<S: Source>(
        self,
        source: S,
        pipeline: Pipeline,
        bundles: usize,
    ) -> Result<RunReport, EngineError> {
        let mut hooks = NoopHooks;
        self.run_with_hooks(source, pipeline, bundles, None, &mut hooks)
    }

    /// Runs like [`Engine::run`], with asynchronous barrier snapshotting:
    /// when `barrier_interval` is `Some(n)`, the sender injects a
    /// checkpoint barrier every `n` bundles and `hooks.on_checkpoint`
    /// receives the aligned [`PipelineSnapshot`]. `hooks` also observes
    /// every sink output and may inject crashes (fault-injection harness).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Crashed`] when `hooks.should_crash` fires,
    /// plus the usual memory/configuration errors.
    pub fn run_with_hooks<S: Source>(
        self,
        source: S,
        pipeline: Pipeline,
        bundles: usize,
        barrier_interval: Option<u64>,
        hooks: &mut dyn CheckpointHooks,
    ) -> Result<RunReport, EngineError> {
        self.run_or_resume(source, pipeline, bundles, barrier_interval, hooks, None)
    }

    /// Resumes a crashed run from `snap`: restores every stateful
    /// operator's window state, the demand-balance knob, the simulated
    /// clock and the engine counters, replays the rate-limited sender to
    /// the saved bundle offset (the deterministic source regenerates the
    /// identical stream), then continues pulling until `bundles` total
    /// bundles — the same target as the original run — have been ingested.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if `snap` does not match the
    /// pipeline's stateful operators, and the same errors as
    /// [`Engine::run_with_hooks`] otherwise.
    pub fn resume_with_hooks<S: Source>(
        self,
        source: S,
        pipeline: Pipeline,
        bundles: usize,
        barrier_interval: Option<u64>,
        hooks: &mut dyn CheckpointHooks,
        snap: &PipelineSnapshot,
    ) -> Result<RunReport, EngineError> {
        self.run_or_resume(
            source,
            pipeline,
            bundles,
            barrier_interval,
            hooks,
            Some(snap),
        )
    }

    fn run_or_resume<S: Source>(
        self,
        source: S,
        pipeline: Pipeline,
        bundles: usize,
        barrier_interval: Option<u64>,
        hooks: &mut dyn CheckpointHooks,
        resume: Option<&PipelineSnapshot>,
    ) -> Result<RunReport, EngineError> {
        let mut sender = Sender::new(&self.env, source, self.cfg.sender);
        if let Some(interval) = barrier_interval {
            sender = sender.with_barriers(interval);
        }
        // Replay the sender to the snapshot's offset: pull and discard
        // events so the source's deterministic generator state advances
        // exactly as it did before the crash.
        let skip = resume.map_or(0, |s| s.bundles_sent) as usize;
        while sender.bundles_sent() < skip {
            sender.next_event()?;
        }
        let mut remaining = bundles.saturating_sub(skip);
        self.run_feed(
            pipeline,
            &mut move || {
                if remaining == 0 {
                    return Ok(None);
                }
                let ev = sender.next_event()?;
                if matches!(ev, IngressEvent::Bundle(..)) {
                    remaining -= 1;
                }
                Ok(Some((ev, 0)))
            },
            hooks,
            resume,
        )
    }

    /// Runs a two-stream `pipeline` (Temporal Join, Windowed Filter) over
    /// `bundle_pairs` pairs of bundles pulled alternately from the two
    /// sources. Watermarks are the minimum of the two sources' promises.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on memory exhaustion or misconfiguration.
    pub fn run_pair<A: Source, B: Source>(
        self,
        left: A,
        right: B,
        pipeline: Pipeline,
        bundle_pairs: usize,
    ) -> Result<RunReport, EngineError> {
        let mut cfg_a = self.cfg.sender;
        cfg_a.bundles_per_watermark = usize::MAX;
        let wm_every = self.cfg.sender.bundles_per_watermark;
        let mut sa = Sender::new(&self.env, left, cfg_a);
        let mut sb = Sender::new(&self.env, right, cfg_a);
        let mut pairs_left = bundle_pairs;
        let mut phase = 0u8; // 0 => left, 1 => right
        let mut pairs_since_wm = 0usize;
        let mut feed = move || {
            if pairs_since_wm >= wm_every {
                pairs_since_wm = 0;
                let wm = sa.source().low_watermark().min(sb.source().low_watermark());
                return Ok(Some((IngressEvent::Watermark(Watermark(wm)), 0)));
            }
            if pairs_left == 0 {
                return Ok(None);
            }
            let (ev, port) = match phase {
                0 => (sa.next_event()?, 0u8),
                _ => (sb.next_event()?, 1u8),
            };
            if phase == 1 {
                pairs_left -= 1;
                pairs_since_wm += 1;
            }
            phase ^= 1;
            Ok(Some((ev, port)))
        };
        self.run_feed(pipeline, &mut feed, &mut NoopHooks, None)
    }

    /// Fires a crash-injection probe; `Err(Crashed)` unwinds the run,
    /// dropping the pipeline and all its RC-pinned bundles.
    fn crash_check(
        &self,
        hooks: &mut dyn CheckpointHooks,
        phase: CrashPhase,
        epoch: u64,
        bundles_in: u64,
    ) -> Result<(), EngineError> {
        let site = CrashSite {
            phase,
            epoch,
            bundles_in,
            sim_secs: self.env.clock().now_secs(),
        };
        if hooks.should_crash(site) {
            return Err(EngineError::Crashed(format!(
                "{phase:?} at epoch {epoch}, bundle {bundles_in}"
            )));
        }
        Ok(())
    }

    fn run_feed(
        mut self,
        mut pipeline: Pipeline,
        feed: &mut dyn FnMut() -> Result<Option<(IngressEvent, u8)>, AllocError>,
        hooks: &mut dyn CheckpointHooks,
        resume: Option<&PipelineSnapshot>,
    ) -> Result<RunReport, EngineError> {
        let spec = pipeline.spec();
        let stride = spec.stride();
        let cores = self.cfg.cores;
        let cost = self.env.cost().clone();
        let dram_bw_limit = self
            .env
            .machine()
            .spec(MemKind::Dram)
            .bandwidth_bytes_per_sec;
        let hbm_bw_limit = self
            .env
            .machine()
            .spec(MemKind::Hbm)
            .bandwidth_bytes_per_sec;

        self.op_metrics = OpMetrics::for_pipeline(&self.cfg.obs.metrics, &pipeline);

        let mut round = Round::default();
        let mut samples: Vec<RoundSample> = Vec::new();
        let mut records_in = 0u64;
        let mut bundles_in = 0u64;
        let mut windows_closed = 0u64;
        let mut output_records = 0u64;
        let mut outputs = Vec::new();
        let mut next_to_close = 0u64;
        let mut max_window_seen = 0u64;
        let mut last_watermark = 0u64;
        self.cur_epoch = 0;

        if let Some(snap) = resume {
            records_in = snap.records_in;
            bundles_in = snap.bundles_in;
            windows_closed = snap.windows_closed;
            output_records = snap.output_records;
            // Seed the run counters so exported totals match the report's
            // whole-run view rather than only the post-resume suffix.
            self.rm.records_in.add(snap.records_in);
            self.rm.bundles_in.add(snap.bundles_in);
            self.rm.windows_closed.add(snap.windows_closed);
            self.rm.output_records.add(snap.output_records);
            next_to_close = snap.next_to_close;
            max_window_seen = snap.max_window_seen;
            last_watermark = snap.watermark;
            self.cur_epoch = snap.epoch;
            self.env.clock().advance_to(snap.clock_ns);
            self.balancer.restore(snap.knob);
            // Rebuild every stateful operator's window state from the
            // snapshot, pairing states with operators in pipeline order.
            let mut idx = 0usize;
            for op in pipeline.ops_mut() {
                if let crate::pipeline::OpNode::Stateful(op) = op {
                    let Some(st) = snap.ops.get(idx) else {
                        return Err(EngineError::Config(format!(
                            "snapshot holds {} operator states but the pipeline has more \
                             stateful operators",
                            snap.ops.len()
                        )));
                    };
                    let mut ctx = crate::OpCtx::with_pool(
                        &self.env,
                        self.pool.clone(),
                        &mut self.balancer,
                        self.cfg.mode,
                        self.cfg.threads,
                        ImpactTag::Urgent,
                    );
                    op.restore(&mut ctx, st)?;
                    round.profile = round.profile.merge(&ctx.take_profile());
                    idx += 1;
                }
            }
            if idx != snap.ops.len() {
                return Err(EngineError::Config(format!(
                    "snapshot holds {} operator states but the pipeline has only {idx} \
                     stateful operators",
                    snap.ops.len()
                )));
            }
        }

        // Bundles buffer within the watermark round and are flushed as a
        // batch, letting the stateless pipeline prefix run on parallel
        // worker threads (the paper's data parallelism across bundles).
        let mut batch: Vec<(Message, ImpactTag)> = Vec::new();

        // Cumulative event counters at the previous round boundary, so the
        // tier timeline carries per-round deltas. Sourced from always-on
        // state (the env's atomic spill count, a local move tally) rather
        // than registry counters, so the flight recorder sees the same
        // values whether or not metrics are attached.
        let mut prev_spills = self.env.spill_count();
        let mut knob_moves_cum: u64 = 0;
        let mut prev_knob_moves: u64 = 0;

        loop {
            let ev = feed()?;
            let (ev, port, last) = match ev {
                Some((ev, port)) => (ev, port, false),
                None => (IngressEvent::Watermark(Watermark::from(u64::MAX)), 0, true),
            };
            let mut sink = Vec::new();
            let is_wm = match ev {
                IngressEvent::Bundle(b, wire_ns) => {
                    self.crash_check(hooks, CrashPhase::Ingest, self.cur_epoch, bundles_in)?;
                    let fmt = self.cfg.ingest_format;
                    let wire_ns = if fmt == IngestFormat::Raw {
                        wire_ns
                    } else {
                        // Encoded ingestion (paper §7.4): decode every
                        // record for real (round-trip through the codec)
                        // and charge the parse cost plus the fatter wire.
                        let schema = b.schema();
                        let mut rows = Vec::with_capacity(b.rows() * schema.ncols());
                        for r in 0..b.rows() {
                            rows.extend_from_slice(b.row(r));
                        }
                        let decoded = fmt.round_trip(schema, &rows);
                        assert_eq!(decoded, rows, "ingest codec corrupted records");
                        round.profile = round.profile.merge(
                            &AccessProfile::new().cpu(b.rows() as f64 * fmt.cycles_per_record()),
                        );
                        self.cfg
                            .sender
                            .nic
                            .transfer_ns((b.rows() * fmt.wire_bytes_per_record(schema)) as u64)
                    };
                    round.ingest_ns += wire_ns;
                    round.records += b.rows() as u64;
                    records_in += b.rows() as u64;
                    bundles_in += 1;
                    self.rm.records_in.add(b.rows() as u64);
                    self.rm.bundles_in.incr();
                    let wid = if b.is_empty() {
                        next_to_close
                    } else {
                        b.ts(0).raw() / stride
                    };
                    max_window_seen = max_window_seen.max(wid);
                    let tag = ImpactTag::from_window_distance(wid.saturating_sub(next_to_close));
                    batch.push((
                        Message::Data {
                            port,
                            data: StreamData::Bundle(b),
                        },
                        tag,
                    ));
                    false
                }
                IngressEvent::Watermark(wm) => {
                    last_watermark = last_watermark.max(wm.time().raw());
                    sink.extend(self.flush_batch(
                        &mut pipeline,
                        &mut round,
                        std::mem::take(&mut batch),
                    )?);
                    sink.extend(self.drive_chain_from(
                        &mut pipeline,
                        &mut round,
                        0,
                        vec![Message::Watermark(wm)],
                        ImpactTag::Urgent,
                        true,
                    )?);
                    let new_next = (wm.time().raw() / stride)
                        .min(max_window_seen + 1)
                        .max(next_to_close);
                    round.closed_windows += new_next - next_to_close;
                    next_to_close = new_next;
                    true
                }
                IngressEvent::Barrier(epoch) => {
                    self.cur_epoch = epoch;
                    self.crash_check(hooks, CrashPhase::BarrierBeforeAlignment, epoch, bundles_in)?;
                    // Barrier alignment: drain every bundle buffered ahead
                    // of the barrier so the snapshot covers a consistent
                    // prefix of the stream.
                    sink.extend(self.flush_batch(
                        &mut pipeline,
                        &mut round,
                        std::mem::take(&mut batch),
                    )?);
                    self.crash_check(hooks, CrashPhase::BarrierAligned, epoch, bundles_in)?;
                    // Drive the barrier through the chain; each stateful
                    // operator materializes its window state onto it.
                    let driven = self.drive_chain_from(
                        &mut pipeline,
                        &mut round,
                        0,
                        vec![Message::Barrier(CheckpointBarrier::new(epoch))],
                        ImpactTag::Urgent,
                        false,
                    )?;
                    let mut states = Vec::new();
                    for m in driven {
                        match m {
                            Message::Barrier(b) => states = b.states,
                            other => sink.push(other),
                        }
                    }
                    // Outputs produced by the alignment flush precede the
                    // snapshot point: count and externalize them *before*
                    // the checkpoint commits, so a resume from this
                    // snapshot neither re-emits nor loses them.
                    for msg in sink.drain(..) {
                        if let Message::Data { data, .. } = msg {
                            output_records += data.len() as u64;
                            self.rm.output_records.add(data.len() as u64);
                            hooks.on_output(&data);
                            if self.cfg.collect_outputs {
                                if let StreamData::Bundle(b) = data {
                                    outputs.push(b);
                                }
                            }
                        }
                    }
                    let snap = PipelineSnapshot {
                        epoch,
                        bundles_sent: bundles_in,
                        records_in,
                        bundles_in,
                        output_records,
                        windows_closed,
                        next_to_close,
                        max_window_seen,
                        watermark: last_watermark,
                        clock_ns: self.env.clock().now_ns(),
                        knob: self.balancer.knob(),
                        ops: states,
                    };
                    self.crash_check(hooks, CrashPhase::BarrierBeforeCommit, epoch, bundles_in)?;
                    let prof = hooks.on_checkpoint(&self.env, snap)?;
                    round.profile = round.profile.merge(&prof);
                    self.crash_check(hooks, CrashPhase::BarrierCommitted, epoch, bundles_in)?;
                    // The commit survived both crash points: incidents
                    // captured from here on cite this epoch as their
                    // preceding recovery point.
                    self.cfg.obs.recorder.note_commit(epoch);
                    false
                }
            };

            for msg in sink {
                if let Message::Data { data, .. } = msg {
                    output_records += data.len() as u64;
                    self.rm.output_records.add(data.len() as u64);
                    hooks.on_output(&data);
                    if self.cfg.collect_outputs {
                        if let StreamData::Bundle(b) = data {
                            outputs.push(b);
                        }
                    }
                }
            }

            if is_wm {
                // End of round: account time, sample resources, update knob.
                let compute_secs = cost
                    .time_secs(&round.profile, cores)
                    .max(round.max_task_secs);
                let ingest_secs = round.ingest_ns as f64 / 1e9;
                let round_secs = compute_secs.max(ingest_secs);
                let start_ns = self.env.clock().now_ns();
                if round_secs > 0.0 {
                    self.env
                        .charge_traffic(&round.profile, start_ns, (round_secs * 1e9) as u64);
                    self.env.clock().advance((round_secs * 1e9) as u64);
                }
                let close_secs = cost.time_secs(&round.close_profile, cores);
                if round.closed_windows > 0 {
                    // Single source of output-delay statistics: the report's
                    // max/avg derive from this histogram (weighted by the
                    // windows closed this round), and the exported metrics
                    // carry the same distribution.
                    self.rm
                        .output_delay
                        .record_n(close_secs, round.closed_windows);
                    windows_closed += round.closed_windows;
                    self.rm.windows_closed.add(round.closed_windows);
                }
                let dram_bytes = round.profile.bytes_on(MemKind::Dram);
                let hbm_bytes = round.profile.bytes_on(MemKind::Hbm);
                // Traffic flows while computing: when a round is
                // ingestion-bound, extra cores still compress the compute
                // phase and raise peak bandwidth (paper Fig. 7b).
                let (dram_bw, hbm_bw) = if compute_secs > 0.0 {
                    (dram_bytes / compute_secs, hbm_bytes / compute_secs)
                } else {
                    (0.0, 0.0)
                };
                let hbm_usage = self.env.pool(MemKind::Hbm).usage();
                let sample = RoundSample {
                    at_secs: self.env.clock().now_secs(),
                    hbm_usage,
                    hbm_used_bytes: self.env.pool(MemKind::Hbm).used_bytes(),
                    dram_bw_gbps: dram_bw / 1e9,
                    hbm_bw_gbps: hbm_bw / 1e9,
                    k_low: self.balancer.knob().k_low,
                    k_high: self.balancer.knob().k_high,
                    records: round.records,
                };
                self.rm.record_round(&sample);
                samples.push(sample);
                let headroom = close_secs < 0.9 * self.cfg.target_delay_secs;
                if let Some(mv) = self
                    .balancer
                    .update(hbm_usage, dram_bw / dram_bw_limit, headroom)
                {
                    self.rm.note_knob_move(mv);
                    knob_moves_cum += 1;
                }
                // Memory-tier timeline point (after the balancer update so
                // the round's own knob move is part of its delta).
                let hpool = self.env.pool(MemKind::Hbm);
                let dpool = self.env.pool(MemKind::Dram);
                let spills_now = self.env.spill_count();
                let knob_moves_now = knob_moves_cum;
                let tier_point = sbx_obs::TierPoint {
                    at_secs: sample.at_secs,
                    hbm_live_bytes: hpool.live_bytes() as f64,
                    hbm_used_bytes: sample.hbm_used_bytes as f64,
                    hbm_occupancy: hbm_usage,
                    dram_live_bytes: dpool.live_bytes() as f64,
                    dram_used_bytes: dpool.used_bytes() as f64,
                    dram_occupancy: dpool.usage(),
                    hbm_bw_util: hbm_bw / hbm_bw_limit,
                    dram_bw_util: dram_bw / dram_bw_limit,
                    spills: spills_now.saturating_sub(prev_spills) as f64,
                    knob_moves: knob_moves_now.saturating_sub(prev_knob_moves) as f64,
                    k_low: self.balancer.knob().k_low,
                    k_high: self.balancer.knob().k_high,
                };
                self.rm.record_tier(&tier_point);
                prev_spills = spills_now;
                prev_knob_moves = knob_moves_now;
                // Flight recorder (DESIGN.md §15): one synthetic round span
                // and one sample feed the always-on detectors. The terminal
                // flush round is excluded — its mass window close is the
                // stream ending, not an anomaly — and everything recorded
                // here is simulated-time data at the quiescent boundary, so
                // the recorder never perturbs the parallel schedule.
                if !last {
                    let recorder = self.cfg.obs.recorder.clone();
                    recorder.record_span(sbx_obs::Span {
                        id: self.cur_round,
                        parent: None,
                        name: "round",
                        cat: "round",
                        lane: 0,
                        round: self.cur_round,
                        epoch: self.cur_epoch,
                        start_ns,
                        dur_ns: (round_secs * 1e9) as u64,
                        records_in: round.records,
                        records_out: round.closed_windows,
                    });
                    let [delay_p50, delay_p95, delay_p99] = self.rm.output_delay.percentiles();
                    let fired = recorder.on_round(sbx_obs::RoundPoint {
                        round: self.cur_round,
                        epoch: self.cur_epoch,
                        at_secs: sample.at_secs,
                        round_secs,
                        close_secs,
                        closed_windows: round.closed_windows as f64,
                        records: round.records as f64,
                        watermark_secs: last_watermark as f64 / 1e9,
                        open_windows: (max_window_seen + 1).saturating_sub(next_to_close) as f64,
                        hbm_occupancy: hbm_usage,
                        dram_occupancy: tier_point.dram_occupancy,
                        spills: tier_point.spills,
                        knob_moves: tier_point.knob_moves,
                        delay_p50,
                        delay_p95,
                        delay_p99,
                    });
                    for verdict in fired {
                        // Freeze the evidence window around the firing
                        // round: full trace spans when tracing is on, else
                        // the recorder's span ring; tier slice via a bounded
                        // series-window read.
                        let (window, ring_spans) = recorder.freeze();
                        let from_round = window.first().map_or(0, |p| p.round);
                        let spans = if self.cfg.obs.trace.is_enabled() {
                            let mut recs = Vec::new();
                            for s in self.cfg.obs.trace.spans() {
                                if s.round >= from_round {
                                    recs.push(sbx_obs::SpanRec::from_span(&s));
                                }
                            }
                            recs
                        } else {
                            sbx_obs::spans_to_recs(&ring_spans)
                        };
                        let tier = sbx_obs::Timeline::from_registry_window(
                            self.rm.registry(),
                            recorder.config().capture_rounds,
                        );
                        recorder.push_incident(sbx_obs::Incident::capture(
                            verdict,
                            self.cur_epoch,
                            recorder.committed_epoch(),
                            sample.at_secs,
                            window,
                            spans,
                            tier.points,
                        ));
                    }
                }
                self.cur_round += 1;
                round = Round::default();
                self.crash_check(hooks, CrashPhase::RoundEnd, self.cur_epoch, bundles_in)?;
            }

            if last {
                break;
            }
        }

        // Leak sweep at engine drop: the final flush closed every window, so
        // once the pipeline (and with it every KPA it still held) is gone,
        // the only bundles legitimately alive are the emitted outputs — any
        // other surviving shadow entry is a pointer-plane leak.
        #[cfg(feature = "sanitize")]
        {
            drop(pipeline);
            let keep: Vec<u64> = outputs.iter().map(|b| b.id().0 as u64).collect();
            let _scope = sbx_sanitize::op_scope(self.next_task, "engine-drop");
            self.env.sanitizer().sweep_leaks(&keep);
        }

        let sim_secs = self.env.clock().now_secs();
        let throughput = if sim_secs > 0.0 {
            records_in as f64 / sim_secs
        } else {
            0.0
        };
        // Final quiescent usage sample: every round boundary already set the
        // gauge, but a run with no completed round would otherwise report
        // zero. Deliberately NOT the allocator's `high_water_bytes`: that
        // mark is taken mid-flight while kernel workers allocate scratch
        // concurrently, so it varies with host thread interleaving, whereas
        // round-boundary `used_bytes` totals are deterministic.
        self.rm
            .hbm_used
            .set(self.env.pool(MemKind::Hbm).used_bytes() as f64);
        // Peak and delay statistics derive from the run instruments — the
        // same values the metrics export carries.
        self.rm.note_recorder(&self.cfg.obs.recorder);
        let [p50_delay, p95_delay, p99_delay] = self.rm.output_delay.percentiles();
        Ok(RunReport {
            records_in,
            bundles_in,
            windows_closed,
            output_records,
            sim_secs,
            throughput_rps: throughput,
            peak_hbm_bw_gbps: self.rm.hbm_bw.max(),
            peak_dram_bw_gbps: self.rm.dram_bw.max(),
            hbm_peak_used_bytes: self.rm.hbm_used.max() as u64,
            max_output_delay_secs: self.rm.output_delay.max(),
            avg_output_delay_secs: self.rm.output_delay.mean(),
            p50_output_delay_secs: p50_delay,
            p95_output_delay_secs: p95_delay,
            p99_output_delay_secs: p99_delay,
            samples,
            outputs,
            trace: std::mem::take(&mut self.trace),
        })
    }

    /// Pushes one message through the whole operator chain, accumulating
    /// per-task profiles into the round. Returns the sink-level messages.
    ///
    /// Each operator invocation over data additionally charges
    /// [`ENGINE_OVERHEAD_CYCLES`] per record: scheduling, work tracking and
    /// allocator costs that the raw primitives do not capture. The constant
    /// is calibrated so that YSB saturates 10 GbE with ~5 cores and RDMA
    /// with ~16, and Windowed Average All plateaus near 110 M records/s —
    /// the paper's §7.1/§7.2 operating points.
    fn drive_chain_from(
        &mut self,
        pipeline: &mut Pipeline,
        round: &mut Round,
        start: usize,
        frontier: Vec<Message>,
        tag: ImpactTag,
        closing: bool,
    ) -> Result<Vec<Message>, EngineError> {
        let cost = self.env.cost().clone();
        let cores = self.cfg.cores;
        let tracing = self.cfg.obs.trace.is_enabled();
        // Span timestamps are simulated: children become available when
        // their parent's modelled execution interval ends.
        let base_ns = self.env.clock().now_ns();
        // Frontier entries carry the parent invocation's id (shared by
        // replay tasks and trace spans) and availability time.
        let mut frontier: Vec<(Message, Option<u64>, u64)> =
            frontier.into_iter().map(|m| (m, None, base_ns)).collect();
        for (op_off, op) in pipeline.ops_mut()[start..].iter_mut().enumerate() {
            let op_index = start + op_off;
            let op_name = op.name();
            let mut next = Vec::new();
            for (m, parent, avail_ns) in frontier {
                let data_len = match &m {
                    Message::Data { data, .. } => data.len(),
                    Message::Watermark(_) | Message::Barrier(_) => 0,
                };
                let is_data = matches!(&m, Message::Data { .. });
                let cat = if closing {
                    "close"
                } else {
                    match &m {
                        Message::Data { .. } => "task",
                        Message::Watermark(_) => "watermark",
                        Message::Barrier(_) => "barrier",
                    }
                };
                let mut ctx = crate::OpCtx::with_pool(
                    &self.env,
                    self.pool.clone(),
                    &mut self.balancer,
                    self.cfg.mode,
                    self.cfg.threads,
                    tag,
                );
                // Attribute every shadow-table event inside this operator
                // invocation to its prospective span id (`next_task` is the
                // id the invocation's span/task gets below when tracing).
                #[cfg(feature = "sanitize")]
                let _scope = sbx_sanitize::op_scope(self.next_task, op_name);
                let outs = match op {
                    crate::pipeline::OpNode::Stateless(op) => op.apply(&mut ctx, m)?,
                    crate::pipeline::OpNode::Stateful(op) => op.on_message(&mut ctx, m)?,
                };
                let tally = ctx.exec().take_tally();
                let events = ctx.take_events();
                let task = ctx
                    .take_profile()
                    .cpu(data_len as f64 * ENGINE_OVERHEAD_CYCLES);
                self.rm.note_events(events);
                let task_secs = cost.time_secs(&task, cores);
                round.max_task_secs = round.max_task_secs.max(task_secs);
                round.profile = round.profile.merge(&task);
                if closing {
                    round.close_profile = round.close_profile.merge(&task);
                }
                let om = self.op_metrics.get(op_index);
                let (mut records_out, mut bundles_out) = (0u64, 0u64);
                if om.is_some() || tracing {
                    for o in &outs {
                        if let Message::Data { data, .. } = o {
                            records_out += data.len() as u64;
                            bundles_out += 1;
                        }
                    }
                }
                if let Some(om) = om {
                    om.note(is_data, data_len as u64, records_out, bundles_out, &tally);
                    if closing {
                        om.close_secs.record(task_secs);
                    }
                }
                let id = if self.cfg.record_trace || tracing {
                    let id = self.next_task;
                    self.next_task += 1;
                    Some(id)
                } else {
                    None
                };
                let dur_ns = (task_secs * 1e9) as u64;
                if let Some(id) = id {
                    if self.cfg.record_trace {
                        self.trace.push(sbx_simmem::TaskSpec {
                            id: sbx_simmem::TaskId(id),
                            profile: task,
                            deps: parent.map(sbx_simmem::TaskId).into_iter().collect(),
                        });
                    }
                    if tracing {
                        self.cfg.obs.trace.record(Span {
                            id,
                            parent,
                            name: op_name,
                            cat,
                            lane: op_index as u64,
                            round: self.cur_round,
                            epoch: self.cur_epoch,
                            start_ns: avail_ns,
                            dur_ns,
                            records_in: data_len as u64,
                            records_out,
                        });
                    }
                }
                let child_avail = avail_ns + dur_ns;
                next.extend(outs.into_iter().map(|o| (o, id, child_avail)));
            }
            frontier = next;
        }
        Ok(frontier.into_iter().map(|(m, _, _)| m).collect())
    }

    /// Flushes a round's buffered bundles through the pipeline. When the
    /// pipeline starts with stateless operators and more than one worker
    /// thread is configured, the stateless prefix runs concurrently across
    /// bundles (each worker caching a snapshot of the demand-balance knob,
    /// as the paper's worker threads do); the stateful suffix then consumes
    /// the staged results in arrival order, so results are deterministic.
    fn flush_batch(
        &mut self,
        pipeline: &mut Pipeline,
        round: &mut Round,
        batch: Vec<(Message, ImpactTag)>,
    ) -> Result<Vec<Message>, EngineError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let prefix_len = pipeline.stateless_prefix_len();
        // Span tracing (like replay-trace recording) forces the serial
        // path: span ids and timestamps then depend only on message order,
        // making same-seed exports byte-identical.
        let parallel = self.cfg.threads > 1
            && prefix_len > 0
            && batch.len() > 1
            && !self.cfg.record_trace
            && !self.cfg.obs.trace.is_enabled();
        let mut sink = Vec::new();
        if parallel {
            let staged = self.run_prefix_parallel(pipeline, round, batch)?;
            for (frontier, tag) in staged {
                sink.extend(
                    self.drive_chain_from(pipeline, round, prefix_len, frontier, tag, false)?,
                );
            }
        } else {
            for (msg, tag) in batch {
                sink.extend(self.drive_chain_from(pipeline, round, 0, vec![msg], tag, false)?);
            }
        }
        Ok(sink)
    }

    /// Runs the stateless pipeline prefix over `batch` on up to
    /// `cfg.threads` worker threads, returning each bundle's staged
    /// frontier in arrival order.
    fn run_prefix_parallel(
        &mut self,
        pipeline: &Pipeline,
        round: &mut Round,
        batch: Vec<(Message, ImpactTag)>,
    ) -> Result<Vec<(Vec<Message>, ImpactTag)>, EngineError> {
        let prefix = pipeline.prefix();
        let env = self.env.clone();
        let cost = env.cost().clone();
        let cores = self.cfg.cores;
        let mode = self.cfg.mode;
        let threads = self.cfg.threads;

        let nworkers = threads.min(batch.len());
        let n = batch.len();
        // Priority-ordered shared queue: Urgent tasks are claimed first
        // (paper §5), FIFO within a tag; workers drain it cooperatively.
        let queue =
            crate::scheduler::TaskBatch::new(batch.into_iter().map(|(m, t)| ((m, t), t)).collect())
                .with_claim_counters(self.rm.claims.clone());
        let balancers: Vec<DemandBalancer> = (0..nworkers).map(|_| self.balancer.clone()).collect();
        let op_metrics = &self.op_metrics;
        let pool = &self.pool;

        type WorkerOut =
            Result<(Vec<(usize, Vec<Message>, ImpactTag)>, AccessProfile, f64), EngineError>;
        let results: Vec<WorkerOut> = std::thread::scope(|s| {
            let handles: Vec<_> = balancers
                .into_iter()
                .map(|mut bal| {
                    let prefix = &prefix;
                    let env = &env;
                    let cost = &cost;
                    let queue = &queue;
                    s.spawn(move || -> WorkerOut {
                        let mut staged = Vec::new();
                        let mut prof = AccessProfile::new();
                        let mut max_task = 0.0f64;
                        while let Some((idx, (msg, tag))) = queue.claim() {
                            let mut frontier = vec![msg];
                            for (oi, op) in prefix.iter().enumerate() {
                                let om = op_metrics.get(oi);
                                let mut next = Vec::new();
                                for m in frontier {
                                    let data_len = m.data_len();
                                    let is_data = matches!(&m, Message::Data { .. });
                                    let mut ctx = crate::OpCtx::with_pool(
                                        env,
                                        pool.clone(),
                                        &mut bal,
                                        mode,
                                        threads,
                                        tag,
                                    );
                                    #[cfg(feature = "sanitize")]
                                    let _scope = sbx_sanitize::op_scope(0, op.name());
                                    let outs = op.apply(&mut ctx, m)?;
                                    let tally = ctx.exec().take_tally();
                                    let t = ctx
                                        .take_profile()
                                        .cpu(data_len as f64 * ENGINE_OVERHEAD_CYCLES);
                                    max_task = max_task.max(cost.time_secs(&t, cores));
                                    prof = prof.merge(&t);
                                    if let Some(om) = om {
                                        let (mut ro, mut bo) = (0u64, 0u64);
                                        for o in &outs {
                                            if let Message::Data { data, .. } = o {
                                                ro += data.len() as u64;
                                                bo += 1;
                                            }
                                        }
                                        om.note(is_data, data_len as u64, ro, bo, &tally);
                                    }
                                    next.extend(outs);
                                }
                                frontier = next;
                            }
                            staged.push((idx, frontier, tag));
                        }
                        Ok((staged, prof, max_task))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(EngineError::Internal("prefix worker panicked")))
                })
                .collect()
        });

        // Reassemble in arrival order so the stateful suffix is
        // deterministic regardless of thread scheduling.
        let mut by_index: Vec<Option<(Vec<Message>, ImpactTag)>> = (0..n).map(|_| None).collect();
        for r in results {
            let (out, prof, max_task) = r?;
            round.profile = round.profile.merge(&prof);
            round.max_task_secs = round.max_task_secs.max(max_task);
            for (idx, frontier, tag) in out {
                by_index[idx] = Some((frontier, tag));
            }
        }
        by_index
            .into_iter()
            .map(|o| o.ok_or(EngineError::Internal("prefix task missing from staging")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::benchmarks;
    use sbx_ingress::{KvSource, NicModel};
    use sbx_records::Col;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            cores: 16,
            sender: SenderConfig {
                bundle_rows: 1_000,
                bundles_per_watermark: 5,
                nic: NicModel::rdma_40g(),
            },
            collect_outputs: true,
            ..RunConfig::default()
        }
    }

    #[test]
    fn sum_per_key_end_to_end_matches_oracle() {
        use std::collections::HashMap;
        let cfg = quick_cfg();
        // Mirror the generator to build the oracle.
        let mut oracle_src = KvSource::new(7, 50, 100_000).with_value_range(1_000);
        let mut flat = Vec::new();
        oracle_src.fill(20 * 1_000, &mut flat);
        let mut expect: HashMap<(u64, u64), u64> = HashMap::new();
        for row in flat.chunks(3) {
            let w = row[2] / benchmarks::WINDOW_TICKS;
            *expect.entry((w, row[0])).or_insert(0) += row[1];
        }

        let engine = Engine::new(cfg);
        let source = KvSource::new(7, 50, 100_000).with_value_range(1_000);
        let report = engine.run(source, benchmarks::sum_per_key(), 20).unwrap();

        let mut got: HashMap<(u64, u64), u64> = HashMap::new();
        for b in &report.outputs {
            for r in 0..b.rows() {
                let w = b.value(r, Col(2)) / benchmarks::WINDOW_TICKS;
                *got.entry((w, b.value(r, Col(0)))).or_insert(0) += b.value(r, Col(1));
            }
        }
        assert_eq!(got, expect);
        assert_eq!(report.records_in, 20_000);
        assert!(report.windows_closed > 0);
        assert!(report.sim_secs > 0.0);
    }

    #[test]
    fn final_flush_closes_all_windows() {
        let engine = Engine::new(quick_cfg());
        let source = KvSource::new(1, 10, 1_000_000);
        let report = engine.run(source, benchmarks::avg_all(), 12).unwrap();
        // 12 bundles x 1000 records at 1M rec/s event time ≈ 0.012 s of
        // event time => exactly 1 window, closed by the final flush.
        assert_eq!(report.windows_closed, 1);
        assert_eq!(report.output_records, 1);
    }

    #[test]
    fn slower_nic_caps_throughput() {
        let mut fast_cfg = quick_cfg();
        fast_cfg.sender.nic = NicModel::rdma_40g();
        let mut slow_cfg = quick_cfg();
        slow_cfg.sender.nic = NicModel::ethernet_10g();
        let fast = Engine::new(fast_cfg)
            .run(KvSource::new(3, 100, 10_000_000), benchmarks::avg_all(), 40)
            .unwrap();
        let slow = Engine::new(slow_cfg)
            .run(KvSource::new(3, 100, 10_000_000), benchmarks::avg_all(), 40)
            .unwrap();
        assert!(
            fast.throughput_rps > 1.5 * slow.throughput_rps,
            "fast {} vs slow {}",
            fast.throughput_rps,
            slow.throughput_rps
        );
    }

    #[test]
    fn dram_only_mode_is_slower_at_scale() {
        let mk = |mode: EngineMode| {
            let mut cfg = quick_cfg();
            cfg.mode = mode;
            cfg.cores = 64;
            cfg.sender.bundle_rows = 20_000;
            Engine::new(cfg)
                .run(
                    KvSource::new(5, 1_000, 50_000_000),
                    benchmarks::topk_per_key(3),
                    30,
                )
                .unwrap()
        };
        let hybrid = mk(EngineMode::Hybrid);
        let dram = mk(EngineMode::DramOnly);
        let nokpa = mk(EngineMode::CachingNoKpa);
        assert!(hybrid.throughput_rps > dram.throughput_rps);
        assert!(dram.throughput_rps > nokpa.throughput_rps);
    }

    #[test]
    fn two_stream_join_runs_end_to_end() {
        let engine = Engine::new(quick_cfg());
        let l = KvSource::new(11, 20, 100_000);
        let r = KvSource::new(12, 20, 100_000);
        let report = engine
            .run_pair(l, r, benchmarks::temporal_join(), 10)
            .unwrap();
        assert_eq!(report.bundles_in, 20);
        assert!(report.output_records > 0, "some keys must match");
    }

    #[test]
    fn trace_replay_cross_validates_round_model() {
        let mut cfg = quick_cfg();
        cfg.record_trace = true;
        cfg.cores = 32;
        let engine = Engine::new(cfg);
        let model = engine.env().cost().clone();
        let report = engine
            .run(
                KvSource::new(21, 1_000, 1_000_000).with_value_range(100),
                benchmarks::sum_per_key(),
                20,
            )
            .unwrap();
        assert!(!report.trace.is_empty());
        // One task per operator per message: at least ops x bundles tasks.
        assert!(report.trace.len() >= 2 * 20);

        let replay = report.replay(model.clone(), 32).expect("trace recorded");
        // The fluid replay ignores ingestion and models contention per
        // task; it must be optimistic relative to serial execution and in
        // the same regime as the round model's simulated time.
        let serial: f64 = report
            .trace
            .iter()
            .map(|t| model.time_secs(&t.profile, 1))
            .sum();
        assert!(replay.makespan_secs <= serial + 1e-9);
        assert!(replay.makespan_secs > 0.0);
        // Same regime: the replay serializes chain dependencies that the
        // round model overlaps, so allow a small constant factor.
        assert!(
            replay.makespan_secs < report.sim_secs * 5.0
                && replay.makespan_secs > report.sim_secs * 0.05,
            "replay {} vs sim {}",
            replay.makespan_secs,
            report.sim_secs
        );
    }

    #[test]
    fn trace_is_empty_unless_requested() {
        let engine = Engine::new(quick_cfg());
        let model = engine.env().cost().clone();
        let report = engine
            .run(KvSource::new(22, 10, 1_000_000), benchmarks::avg_all(), 5)
            .unwrap();
        assert!(report.trace.is_empty());
        assert!(report.replay(model, 16).is_none());
    }

    #[test]
    fn report_samples_track_rounds() {
        let engine = Engine::new(quick_cfg());
        let report = engine
            .run(
                KvSource::new(2, 10, 1_000_000),
                benchmarks::sum_per_key(),
                15,
            )
            .unwrap();
        // 15 bundles at 5 per watermark => 3 senders watermarks + final flush.
        assert!(report.samples.len() >= 3);
        for s in &report.samples {
            assert!(s.k_low >= 0.0 && s.k_low <= 1.0);
            assert!(s.hbm_usage >= 0.0 && s.hbm_usage <= 1.0);
        }
    }
}

//! Randomized property tests over the core data structures and primitives:
//! sorting, merging, joining, partitioning, extraction round-trips, parser
//! codecs and window assignment.
//!
//! Cases are generated from a fixed-seed [`SbxRng`], so every run checks
//! the exact same inputs (fully deterministic, offline-friendly stand-in
//! for the earlier proptest suite).

use sbx_prng::SbxRng;
use streambox_hbm::ingress::parse::{json, proto, text};
use streambox_hbm::ingress::Partitioned;
use streambox_hbm::kpa::{bitonic, hash, join_sorted, reduce_keyed, ExecCtx, Kpa};
use streambox_hbm::prelude::*;

const CASES: u64 = 48;

fn env() -> MemEnv {
    MemEnv::new(MachineConfig::knl().scaled(0.05))
}

fn kpa_from_keys(env: &MemEnv, ctx: &mut ExecCtx, keys: &[u64]) -> Kpa {
    let rows: Vec<u64> = keys
        .iter()
        .enumerate()
        .flat_map(|(i, &k)| [k, i as u64, 0])
        .collect();
    let b = RecordBundle::from_rows(env, Schema::kvt(), &rows).expect("fits");
    Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).expect("fits")
}

fn any_keys(rng: &mut SbxRng, max_len: u64) -> Vec<u64> {
    let n = rng.random_range(0..max_len) as usize;
    (0..n).map(|_| rng.random()).collect()
}

/// Sort produces exactly the multiset of inputs, ordered, and every pointer
/// still dereferences to a record carrying its key.
#[test]
fn sort_is_a_permutation_and_pointers_follow() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1001);
    for _ in 0..CASES {
        let keys = any_keys(&mut rng, 2_000);
        let threads = rng.random_range(1..6) as usize;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_from_keys(&env, &mut ctx, &keys);
        kpa.sort(&mut ctx, threads).expect("sort");

        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(kpa.keys(), &expect[..]);
        for i in 0..kpa.len() {
            assert_eq!(kpa.value_at(i, Col(0)), kpa.keys()[i]);
        }
    }
}

/// Merging any partition of a sorted sequence reproduces the sequence.
#[test]
fn merge_many_reassembles_sorted_input() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1002);
    for _ in 0..CASES {
        let mut keys = any_keys(&mut rng, 1_500);
        if keys.is_empty() {
            keys.push(rng.random());
        }
        let chunks = rng.random_range(1..8) as usize;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let chunk = keys.len().div_ceil(chunks);
        let mut parts = Vec::new();
        for piece in keys.chunks(chunk) {
            let mut kpa = kpa_from_keys(&env, &mut ctx, piece);
            kpa.sort(&mut ctx, 2).expect("sort");
            parts.push(kpa);
        }
        let merged =
            Kpa::merge_many(&mut ctx, parts, MemKind::Hbm, Priority::Normal).expect("merge");
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(merged.keys(), &expect[..]);
    }
}

/// Extract then Materialize reproduces the source bundle row-for-row.
#[test]
fn extract_materialize_round_trips() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1003);
    for _ in 0..CASES {
        let mut rows = any_keys(&mut rng, 600);
        rows.truncate(rows.len() / 3 * 3);
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &rows).expect("fits");
        let kpa = Kpa::extract(&mut ctx, &b, Col(1), MemKind::Hbm, Priority::Normal).expect("fits");
        let out = kpa.materialize(&mut ctx).expect("fits");
        assert_eq!(out.rows(), b.rows());
        for r in 0..b.rows() {
            assert_eq!(out.row(r), b.row(r));
        }
    }
}

/// Partition is a lossless, order-preserving split.
#[test]
fn partition_is_complete_and_ordered() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1004);
    for _ in 0..CASES {
        let n = rng.random_range(0..1_500) as usize;
        let keys = rng.vec_in(n, 0..1_000);
        let stride = rng.random_range(1..200);
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let kpa = kpa_from_keys(&env, &mut ctx, &keys);
        let parts = kpa
            .partition_by(&mut ctx, Priority::Normal, |k| k / stride)
            .expect("fits");
        // Groups are disjoint, correctly classified and jointly exhaustive.
        let mut total = 0usize;
        let mut reassembled: Vec<(u64, u64)> = Vec::new();
        for (g, p) in &parts {
            for (i, &k) in p.keys().iter().enumerate() {
                assert_eq!(k / stride, *g);
                // value col 1 carries the original index: use it to check
                // order preservation within a group.
                reassembled.push((*g, p.value_at(i, Col(1))));
            }
            total += p.len();
        }
        assert_eq!(total, keys.len());
        for w in reassembled.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "order within group must be stable");
            }
        }
    }
}

/// Select behaves exactly like the slice filter.
#[test]
fn select_matches_filter_oracle() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1005);
    for _ in 0..CASES {
        let keys = any_keys(&mut rng, 1_500);
        let threshold = rng.random();
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let kpa = kpa_from_keys(&env, &mut ctx, &keys);
        let selected = kpa
            .select(&mut ctx, Priority::Normal, |k| k >= threshold)
            .expect("fits");
        let expect: Vec<u64> = keys.iter().copied().filter(|&k| k >= threshold).collect();
        assert_eq!(selected.keys(), &expect[..]);
    }
}

/// Sorted join emits exactly the nested-loop pairs.
#[test]
fn join_matches_nested_loop() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1006);
    for _ in 0..CASES {
        let ln = rng.random_range(0..120) as usize;
        let l = rng.vec_in(ln, 0..40);
        let rn = rng.random_range(0..120) as usize;
        let r = rng.vec_in(rn, 0..40);
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut lk = kpa_from_keys(&env, &mut ctx, &l);
        let mut rk = kpa_from_keys(&env, &mut ctx, &r);
        lk.sort(&mut ctx, 2).expect("sort");
        rk.sort(&mut ctx, 2).expect("sort");
        let mut emitted = 0u64;
        join_sorted(&mut ctx, &lk, &rk, 32, |_, _, _, _| emitted += 1);
        let mut expect = 0u64;
        for &a in &l {
            for &b in &r {
                if a == b {
                    expect += 1;
                }
            }
        }
        assert_eq!(emitted, expect);
    }
}

/// Keyed reduction visits every pair exactly once, grouped by key.
#[test]
fn reduce_keyed_covers_all_pairs() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1007);
    for _ in 0..CASES {
        let n = rng.random_range(0..1_000) as usize;
        let keys = rng.vec_in(n, 0..100);
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_from_keys(&env, &mut ctx, &keys);
        kpa.sort(&mut ctx, 2).expect("sort");
        let mut seen = 0usize;
        let mut last_key = None;
        let groups = reduce_keyed(&mut ctx, &kpa, Col(1), |g| {
            seen += g.values.len();
            if let Some(k) = last_key {
                assert!(g.key > k, "keys strictly increase across groups");
            }
            last_key = Some(g.key);
        });
        assert_eq!(seen, keys.len());
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(groups, uniq.len());
    }
}

/// All three parser codecs are inverses of their encoders.
#[test]
fn codecs_round_trip() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1008);
    for _ in 0..CASES {
        let n = rng.random_range(1..16) as usize;
        let record: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        let names: Vec<String> = (0..record.len()).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(std::string::String::as_str).collect();

        let mut out = Vec::new();
        json::parse(json::encode(&record, &name_refs).as_bytes(), &mut out).expect("json");
        assert_eq!(&out, &record);

        out.clear();
        proto::parse(&proto::encode(&record), record.len(), &mut out).expect("proto");
        assert_eq!(&out, &record);

        out.clear();
        text::parse(text::encode(&record).as_bytes(), &mut out).expect("text");
        assert_eq!(&out, &record);
    }
}

/// The bitonic network and block-merge chunk sort equal a reference sort
/// for any length and key distribution.
#[test]
fn bitonic_chunk_sort_matches_reference() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_1009);
    for _ in 0..CASES {
        let keys = any_keys(&mut rng, 1_500);
        let mut k = keys.clone();
        let mut p: Vec<u64> = (0..keys.len() as u64).collect();
        bitonic::sort_chunk(&mut k, &mut p);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(&k, &expect);
        // Pointers still pair with their original keys.
        for (i, &ptr) in p.iter().enumerate() {
            assert_eq!(keys[ptr as usize], k[i]);
        }
    }
}

/// The hash grouper agrees with a BTreeMap oracle across arbitrary insert
/// sequences (including growth past the initial capacity).
#[test]
fn hash_grouper_matches_btreemap() {
    use std::collections::BTreeMap;
    let mut rng = SbxRng::seed_from_u64(0x5b57_100a);
    for _ in 0..CASES {
        let n = rng.random_range(0..3_000) as usize;
        let pairs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.random(), rng.random_range(0..1_000)))
            .collect();
        let capacity = rng.random_range(1..64) as usize;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut table =
            hash::HashGrouper::with_slots(&mut ctx, capacity, MemKind::Dram, Priority::Normal)
                .expect("fits");
        let mut oracle: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for &(k, v) in &pairs {
            table.insert(k, v);
            let e = oracle.entry(k).or_insert((0, 0));
            e.0 = e.0.wrapping_add(v);
            e.1 += 1;
        }
        assert_eq!(table.len(), oracle.len());
        let mut got: Vec<(u64, u64, u64)> = table.iter().collect();
        got.sort_unstable();
        let expect: Vec<(u64, u64, u64)> =
            oracle.into_iter().map(|(k, (s, c))| (k, s, c)).collect();
        assert_eq!(got, expect);
    }
}

/// Key-partitioned shards are disjoint and jointly exhaustive over any
/// prefix of the logical stream.
#[test]
fn partitioned_shards_cover_the_stream() {
    use std::collections::HashMap;
    let mut rng = SbxRng::seed_from_u64(0x5b57_100b);
    for _ in 0..CASES {
        let instances = rng.random_range(1..6);
        let per_shard = rng.random_range(1..200) as usize;
        let seed = rng.random();
        let mut owned_total = 0usize;
        let mut owner_of: HashMap<u64, u64> = HashMap::new();
        for id in 0..instances {
            let mut s = Partitioned::new(KvSource::new(seed, 50, 1_000), 0, instances, id);
            let mut v = Vec::new();
            s.fill(per_shard, &mut v);
            assert_eq!(v.len(), per_shard * 3);
            owned_total += per_shard;
            for row in v.chunks(3) {
                if let Some(prev) = owner_of.insert(row[0], id) {
                    assert_eq!(prev, id, "key {} seen on two shards", row[0]);
                }
            }
        }
        assert!(owned_total > 0);
    }
}

/// K-way and pairwise merges of arbitrary sorted partitions agree.
#[test]
fn kway_and_pairwise_merges_agree() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_100c);
    for _ in 0..CASES {
        let mut keys = any_keys(&mut rng, 800);
        if keys.is_empty() {
            keys.push(rng.random());
        }
        let chunks = rng.random_range(1..9) as usize;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let chunk = keys.len().div_ceil(chunks);
        let mk = |ctx: &mut ExecCtx| -> Vec<Kpa> {
            keys.chunks(chunk)
                .map(|piece| {
                    let mut kpa = kpa_from_keys(&env, ctx, piece);
                    kpa.sort(ctx, 2).expect("sort");
                    kpa
                })
                .collect()
        };
        let parts_a = mk(&mut ctx);
        let parts_b = mk(&mut ctx);
        let a = Kpa::merge_many(&mut ctx, parts_a, MemKind::Hbm, Priority::Normal).expect("merge");
        let b =
            Kpa::merge_many_kway(&mut ctx, parts_b, MemKind::Hbm, Priority::Normal).expect("merge");
        assert_eq!(a.keys(), b.keys());
    }
}

/// Window assignment: every window of a timestamp contains it, and fixed
/// windows tile time exactly.
#[test]
fn window_assignment_invariants() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_100d);
    for _ in 0..CASES {
        let ts = rng.random();
        let size = rng.random_range(1..1_000_000);
        let k = rng.random_range(1..5);
        let size = size * k; // ensure slide divides size
        let fixed = WindowSpec::fixed(size);
        let w = fixed.window_of(EventTime(ts));
        assert!(fixed.start(w).raw() <= ts);
        if let Some(end) = fixed.start(w).raw().checked_add(size) {
            assert!(ts < end);
        }
        let sliding = WindowSpec::sliding(size, size / k);
        for w in sliding.windows_of(EventTime(ts)) {
            assert!(sliding.start(w).raw() <= ts && ts < sliding.end(w).raw());
        }
    }
}

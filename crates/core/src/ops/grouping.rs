//! Pluggable grouping backends for [`KeyedAggregate`] and the adaptive
//! sort-vs-hash decision (DESIGN.md §14).
//!
//! The paper's central bet is that sort-based KPA grouping beats hashing on
//! HBM because sequential bandwidth dwarfs random access — but its own
//! Figure 2 concedes the low-cardinality regime to hashing, and HBM
//! analytics work (Kara et al.) confirms hash probes gain little from
//! bandwidth while scans gain a lot. This module stops hard-coding the bet:
//! GroupBy is parameterized over a [`GroupingBackend`] — the adapter shape
//! of map-bench `Collection`/`CollectionHandle` harnesses, specialized to
//! windowed aggregation — with three implementations:
//!
//! - [`SortMergeBackend`]: the paper's KPA path (sort each arriving KPA,
//!   merge at close, keyed reduction), verbatim from the original operator.
//! - [`HashShardBackend`]: a sharded open-addressing table generalized from
//!   `sbx_kpa::hash`, with a fixed shard count fanned over the worker-pool
//!   wave lanes. Shard assignment depends only on the key hash and drains
//!   are globally key-sorted, so outputs are bit-identical across thread
//!   counts.
//! - [`RowBaselineBackend`]: a single DRAM table charged at the row
//!   engine's calibrated per-record cost — the Flink-class baseline, kept
//!   as a measurable floor.
//!
//! On top sits the per-window *adaptive* decision ([`decide_backend`]):
//! a deterministic cardinality/skew sketch of the first KPA plus the
//! exponentially-smoothed history of closed windows feeds the recalibrated
//! cost model (`profile::sort_chunked` vs `profile::hash_group_grown`),
//! and the cheaper backend wins.
//! Every construction emits a `groupby.backend.*` event that the engine
//! surfaces as `engine.groupby.backend.*` counters.

use sbx_kpa::hash::{fib_hash, HashAgg, HashGrouper};
use sbx_kpa::sketch::GroupSketch;
use sbx_kpa::{agg, profile, reduce_keyed, Kpa};
use sbx_records::{Col, RecordBundle, Schema};
use sbx_simmem::{AccessProfile, AllocError, MemEnv, MemKind, Priority};

use crate::checkpoint::StateEntry;
use crate::ops::AggKind;
use crate::{EngineError, OpCtx};

/// Which grouping backend a [`KeyedAggregate`](crate::ops::KeyedAggregate)
/// uses (CLI: `--grouping {sort,hash,row,adaptive}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingSpec {
    /// The paper's KPA sort-merge path (default).
    #[default]
    SortMerge,
    /// Sharded open-addressing hash tables with deterministic drains.
    Hash,
    /// Single-table row-engine baseline (measurement floor; never chosen
    /// by the adaptive policy).
    RowBaseline,
    /// Per-window sort-vs-hash decision from the cardinality sketch, the
    /// window history, and the recalibrated cost model.
    Adaptive,
}

impl GroupingSpec {
    /// Parses a CLI spelling (`sort`, `hash`, `row`, `adaptive`).
    pub fn parse(s: &str) -> Option<GroupingSpec> {
        match s {
            "sort" => Some(GroupingSpec::SortMerge),
            "hash" => Some(GroupingSpec::Hash),
            "row" => Some(GroupingSpec::RowBaseline),
            "adaptive" => Some(GroupingSpec::Adaptive),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            GroupingSpec::SortMerge => "sort",
            GroupingSpec::Hash => "hash",
            GroupingSpec::RowBaseline => "row",
            GroupingSpec::Adaptive => "adaptive",
        }
    }
}

/// Backend-decision events, surfaced by the engine as
/// `engine.groupby.backend.*` counters (one increment per window).
pub(crate) const EV_BACKEND_SORT: &str = "groupby.backend.sort";
/// See [`EV_BACKEND_SORT`].
pub(crate) const EV_BACKEND_HASH: &str = "groupby.backend.hash";
/// See [`EV_BACKEND_SORT`].
pub(crate) const EV_BACKEND_ROW: &str = "groupby.backend.row";

/// Snapshot-entry ports (see `KeyedAggregate::snapshot`): the port both
/// routes an entry to the right backend kind on restore and versions the
/// row layout within.
pub(crate) const PORT_SORT_KPA: u8 = 0;
/// Pane-combining partial bundles (not a backend port).
pub(crate) const PORT_PANE_BUNDLE: u8 = 1;
/// Hash backend, scalar `(key, sum, count)` rows.
pub(crate) const PORT_HASH_SCALAR: u8 = 2;
/// Hash backend, `(key, value, 0)` rows in per-key insertion order.
pub(crate) const PORT_HASH_VALUES: u8 = 3;
/// Row baseline, scalar rows.
pub(crate) const PORT_ROW_SCALAR: u8 = 4;
/// Row baseline, value rows.
pub(crate) const PORT_ROW_VALUES: u8 = 5;

/// Per-operator aggregation parameters threaded to the backends.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AggParams {
    /// The aggregate computed per key.
    pub kind: AggKind,
    /// Value column dereferenced per record.
    pub value_col: Col,
    /// Whether the sort path pre-reduces arriving KPAs to partials.
    pub early: bool,
}

impl AggParams {
    /// `Count` never dereferences the value column — the hash backends
    /// exploit this by touching keys only.
    fn count_only(&self) -> bool {
        matches!(self.kind, AggKind::Count)
    }
}

/// The table mode a [`HashGrouper`]-based backend needs for `kind`:
/// `Sum`/`Count` are exact from the scalar `(sum, count)` lanes; everything
/// else needs the per-key value multiset (`agg::average` sums in `u128`, so
/// even `Avg` cannot use the wrapping scalar sum).
fn hash_mode(kind: AggKind) -> HashAgg {
    match kind {
        AggKind::Sum | AggKind::Count => HashAgg::SumCount,
        _ => HashAgg::Values,
    }
}

/// One window's grouping state behind [`KeyedAggregate`]: ingest sorted or
/// hashed, drain in ascending key order at window close, snapshot/restore
/// through the checkpoint barrier machinery.
///
/// The contract every implementation upholds: for the same multiset of
/// `(key, value)` pairs, [`GroupingBackend::close`] appends *byte-identical*
/// `[key, aggregate, window-start]` rows — ascending keys, `agg::*`
/// semantics per kind — regardless of backend, thread count, or arrival
/// interleaving within the window.
pub(crate) trait GroupingBackend: Send + std::fmt::Debug {
    /// Backend label for spans and events.
    fn label(&self) -> &'static str;

    /// Absorbs one windowed KPA (already key-swapped and key-mapped).
    fn ingest(&mut self, ctx: &mut OpCtx<'_>, kpa: Kpa, p: &AggParams) -> Result<(), EngineError>;

    /// Drains the window into `rows` (`[key, agg, start]` triples, ascending
    /// keys) and returns the number of distinct groups.
    fn close(
        &mut self,
        ctx: &mut OpCtx<'_>,
        p: &AggParams,
        start: u64,
        rows: &mut Vec<u64>,
    ) -> Result<u64, EngineError>;

    /// Records ingested so far (feeds the adaptive window history).
    fn records(&self) -> u64;

    /// Appends this window's state entries to a checkpoint snapshot.
    fn snapshot(
        &self,
        ctx: &mut OpCtx<'_>,
        window: u64,
        out: &mut Vec<StateEntry>,
    ) -> Result<(), EngineError>;

    /// Rebuilds state from one snapshot entry previously produced by
    /// [`GroupingBackend::snapshot`] on the same backend kind.
    fn restore_entry(&mut self, ctx: &mut OpCtx<'_>, e: &StateEntry) -> Result<(), EngineError>;
}

/// Emits one group's output rows exactly as the original `KeyedAggregate`
/// close path did — shared by the sort backend's reduce closure and the
/// hash backends' drains, so their bytes cannot diverge.
pub(crate) fn emit_group(
    kind: AggKind,
    early: bool,
    key: u64,
    values: &[u64],
    start: u64,
    rows: &mut Vec<u64>,
) {
    match kind {
        AggKind::Sum => {
            rows.extend_from_slice(&[
                key,
                values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
                start,
            ]);
        }
        AggKind::Count => {
            // With early aggregation the values are partial counts;
            // otherwise each value is one record.
            let c = if early {
                values.iter().fold(0u64, |a, &v| a.wrapping_add(v))
            } else {
                values.len() as u64
            };
            rows.extend_from_slice(&[key, c, start]);
        }
        AggKind::Avg => {
            rows.extend_from_slice(&[key, agg::average(values), start]);
        }
        AggKind::Median => {
            let mut v = values.to_vec();
            rows.extend_from_slice(&[key, agg::median(&mut v), start]);
        }
        AggKind::TopK(k) => {
            for v in agg::top_k(values, k) {
                rows.extend_from_slice(&[key, v, start]);
            }
        }
        AggKind::UniqueCount => {
            let mut v = values.to_vec();
            rows.extend_from_slice(&[key, agg::unique_count(&mut v), start]);
        }
    }
}

// ---------------------------------------------------------------------------
// Sort-merge backend (the paper's path, ported verbatim)
// ---------------------------------------------------------------------------

/// The KPA sort-merge grouping path: sort each arriving KPA (pre-reducing
/// to partials when early aggregation applies), merge all of them at close,
/// and run the keyed reduction.
#[derive(Debug, Default)]
pub(crate) struct SortMergeBackend {
    kpas: Vec<Kpa>,
    records: u64,
}

impl SortMergeBackend {
    /// An empty window.
    pub(crate) fn new() -> Self {
        SortMergeBackend::default()
    }

    /// Early aggregation: reduce one sorted KPA to per-key partials stored
    /// in a fresh (small) bundle, and return a KPA over it.
    fn pre_reduce(ctx: &mut OpCtx<'_>, kpa: Kpa, p: &AggParams) -> Result<Kpa, EngineError> {
        let value_col = p.value_col;
        let kind = p.kind;
        let mut rows: Vec<u64> = Vec::new();
        ctx.charged(16, |e| {
            reduce_keyed(e, &kpa, value_col, |g| {
                // Early aggregation is only enabled for Sum and Count
                // (see `KeyedAggregate::new`); any other kind never
                // reaches this closure, and the Sum arm is a safe default.
                let partial = match kind {
                    AggKind::Count => g.values.len() as u64,
                    _ => g.values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
                };
                rows.extend_from_slice(&[g.key, partial, 0]);
            })
        });
        let env = ctx.env();
        let bundle = RecordBundle::from_rows(&env, Schema::kvt(), &rows)?;
        // The partial bundle was just written: fuse its extraction
        // (paper §4.3 optimization 1).
        let (kind, prio) = ctx.place();
        let mut out = ctx.charged(24, |e| Kpa::extract_fused(e, &bundle, Col(0), kind, prio))?;
        // reduce_keyed emitted the partials in ascending key order.
        out.mark_sorted();
        Ok(out)
    }
}

impl GroupingBackend for SortMergeBackend {
    fn label(&self) -> &'static str {
        "sort"
    }

    fn ingest(
        &mut self,
        ctx: &mut OpCtx<'_>,
        mut kpa: Kpa,
        p: &AggParams,
    ) -> Result<(), EngineError> {
        self.records += kpa.len() as u64;
        ctx.sort(&mut kpa)?;
        if p.early && kpa.len() > 1 {
            kpa = Self::pre_reduce(ctx, kpa, p)?;
        }
        self.kpas.push(kpa);
        Ok(())
    }

    fn close(
        &mut self,
        ctx: &mut OpCtx<'_>,
        p: &AggParams,
        start: u64,
        rows: &mut Vec<u64>,
    ) -> Result<u64, EngineError> {
        let kpas = std::mem::take(&mut self.kpas);
        if kpas.is_empty() {
            return Ok(0);
        }
        let merged = ctx.merge_many(kpas)?;
        // When early aggregation ran, the stored "values" are partials
        // living in column 1 of the partial bundles.
        let value_col = if p.early { Col(1) } else { p.value_col };
        let kind = p.kind;
        let early = p.early;
        let mut groups = 0u64;
        ctx.charged(16, |e| {
            reduce_keyed(e, &merged, value_col, |g| {
                groups += 1;
                emit_group(kind, early, g.key, g.values, start, rows);
            })
        });
        Ok(groups)
    }

    fn records(&self) -> u64 {
        self.records
    }

    fn snapshot(
        &self,
        ctx: &mut OpCtx<'_>,
        window: u64,
        out: &mut Vec<StateEntry>,
    ) -> Result<(), EngineError> {
        for kpa in &self.kpas {
            out.push(StateEntry::from_kpa(ctx, window, PORT_SORT_KPA, kpa)?);
        }
        Ok(())
    }

    fn restore_entry(&mut self, ctx: &mut OpCtx<'_>, e: &StateEntry) -> Result<(), EngineError> {
        let kpa = e.to_kpa(ctx)?;
        self.records += kpa.len() as u64;
        self.kpas.push(kpa);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Hash backends
// ---------------------------------------------------------------------------

/// Number of hash shards, fixed regardless of thread count so that table
/// shapes — and therefore every observable byte — are independent of
/// parallelism. Eight matches the wave-lane width the engine typically
/// runs grouping at; with fewer threads the pool folds shards onto lanes.
pub(crate) const SHARD_COUNT: usize = 8;

/// The shard owning `key`: top three bits of the Fibonacci hash (the slot
/// index within a shard uses the low bits, so the two are independent).
#[inline]
fn shard_of(key: u64) -> usize {
    (fib_hash(key) >> 61) as usize
}

/// Initial per-shard capacity (slots grow/spill on demand).
const SHARD_SEED_KEYS: usize = 128;

/// Shared core of the hash-table backends: `SHARD_COUNT` tables for the
/// parallel backend, one for the row baseline.
#[derive(Debug)]
struct HashCore {
    shards: Vec<HashGrouper>,
    records: u64,
}

impl HashCore {
    fn new(
        ctx: &mut OpCtx<'_>,
        n_shards: usize,
        kind: AggKind,
        mem_kind: MemKind,
        prio: Priority,
    ) -> Result<Self, EngineError> {
        let mode = hash_mode(kind);
        let mut shards: Vec<HashGrouper> = Vec::new();
        for _ in 0..n_shards {
            shards.push(HashGrouper::with_mode(
                ctx.exec(),
                SHARD_SEED_KEYS,
                mode,
                mem_kind,
                prio,
            )?);
        }
        Ok(HashCore { shards, records: 0 })
    }

    fn groups(&self) -> usize {
        self.shards.iter().map(HashGrouper::len).sum()
    }

    fn slots(&self) -> usize {
        self.shards.iter().map(HashGrouper::slots).sum()
    }

    fn table_kind(&self) -> MemKind {
        self.shards.first().map_or(MemKind::Dram, HashGrouper::kind)
    }

    fn mode(&self) -> HashAgg {
        self.shards
            .first()
            .map_or(HashAgg::SumCount, HashGrouper::mode)
    }

    /// Gathers this KPA's `(key, value)` pairs by shard. `Count` reads no
    /// values (the hash advantage the adaptive policy exploits).
    fn gather(kpa: &Kpa, p: &AggParams, n_shards: usize) -> Vec<Vec<(u64, u64)>> {
        let mut parts: Vec<Vec<(u64, u64)>> = Vec::new();
        for _ in 0..n_shards {
            parts.push(Vec::new());
        }
        let keys = kpa.keys();
        let count_only = p.count_only();
        for (i, &k) in keys.iter().enumerate() {
            let v = if count_only {
                0
            } else {
                kpa.value_at(i, p.value_col)
            };
            parts[if n_shards > 1 { shard_of(k) } else { 0 }].push((k, v));
        }
        parts
    }

    /// Inserts pre-gathered pairs, one job per shard over the worker-pool
    /// wave lanes. Job outputs return in job order, so shard identity —
    /// and every downstream byte — is independent of lane count.
    fn insert_parallel(
        &mut self,
        ctx: &mut OpCtx<'_>,
        parts: Vec<Vec<(u64, u64)>>,
    ) -> Result<(), EngineError> {
        let shards = std::mem::take(&mut self.shards);
        let mut jobs: Vec<(HashGrouper, Vec<(u64, u64)>)> = Vec::new();
        for (t, part) in shards.into_iter().zip(parts) {
            jobs.push((t, part));
        }
        let lanes = ctx.threads.min(jobs.len()).max(1);
        let results = ctx.exec().pool().run(
            lanes,
            |(mut t, pairs): (HashGrouper, Vec<(u64, u64)>)| -> Result<HashGrouper, AllocError> {
                for (k, v) in pairs {
                    t.try_insert(k, v)?;
                }
                Ok(t)
            },
            jobs,
        );
        for r in results {
            self.shards.push(r.map_err(EngineError::from)?);
        }
        Ok(())
    }

    /// Drains every shard into globally key-sorted output rows via
    /// [`emit_group`], matching the sort path's ascending-key emission.
    fn drain(&self, p: &AggParams, start: u64, rows: &mut Vec<u64>) -> u64 {
        match self.mode() {
            HashAgg::SumCount => {
                let mut entries: Vec<(u64, u64, u64)> = Vec::new();
                for sh in &self.shards {
                    for e in sh.iter() {
                        entries.push(e);
                    }
                }
                entries.sort_unstable_by_key(|e| e.0);
                let groups = entries.len() as u64;
                for (k, s, c) in entries {
                    match p.kind {
                        AggKind::Count => rows.extend_from_slice(&[k, c, start]),
                        // Scalar mode exists only for Sum and Count.
                        _ => rows.extend_from_slice(&[k, s, start]),
                    }
                }
                groups
            }
            HashAgg::Values => {
                let mut entries: Vec<(u64, Vec<u64>)> = Vec::new();
                for sh in &self.shards {
                    for e in sh.drain_values_sorted() {
                        entries.push(e);
                    }
                }
                entries.sort_unstable_by_key(|e| e.0);
                let groups = entries.len() as u64;
                for (k, vals) in entries {
                    // Hash state is never pre-reduced: early = false.
                    emit_group(p.kind, false, k, &vals, start, rows);
                }
                groups
            }
        }
    }

    /// One snapshot entry per window: scalar `(key, sum, count)` triples or
    /// `(key, value, 0)` triples in per-key insertion order, key-sorted.
    fn snapshot_entry(&self, window: u64, scalar_port: u8, values_port: u8) -> StateEntry {
        let mut rows: Vec<u64> = Vec::new();
        match self.mode() {
            HashAgg::SumCount => {
                let mut entries: Vec<(u64, u64, u64)> = Vec::new();
                for sh in &self.shards {
                    for e in sh.iter() {
                        entries.push(e);
                    }
                }
                entries.sort_unstable_by_key(|e| e.0);
                for (k, s, c) in entries {
                    rows.extend_from_slice(&[k, s, c]);
                }
                StateEntry::from_rows(window, scalar_port, 3, 2, rows)
            }
            HashAgg::Values => {
                let mut entries: Vec<(u64, Vec<u64>)> = Vec::new();
                for sh in &self.shards {
                    for e in sh.drain_values_sorted() {
                        entries.push(e);
                    }
                }
                entries.sort_unstable_by_key(|e| e.0);
                for (k, vals) in entries {
                    for v in vals {
                        rows.extend_from_slice(&[k, v, 0]);
                    }
                }
                StateEntry::from_rows(window, values_port, 3, 2, rows)
            }
        }
    }

    /// Rebuilds shard state from a snapshot entry. Scalar entries fold
    /// `(sum, count)` partials; value entries replay the inserts (which
    /// rebuilds the scalar lanes too). Restores the exact record count.
    fn restore_rows(&mut self, e: &StateEntry) -> Result<(), EngineError> {
        let n_shards = self.shards.len();
        match self.mode() {
            HashAgg::SumCount => {
                for chunk in e.rows.chunks_exact(3) {
                    let (k, s, c) = (chunk[0], chunk[1], chunk[2]);
                    let sh = if n_shards > 1 { shard_of(k) } else { 0 };
                    self.shards[sh]
                        .merge_entry(k, s, c)
                        .map_err(EngineError::from)?;
                    self.records += c;
                }
            }
            HashAgg::Values => {
                for chunk in e.rows.chunks_exact(3) {
                    let (k, v) = (chunk[0], chunk[1]);
                    let sh = if n_shards > 1 { shard_of(k) } else { 0 };
                    self.shards[sh]
                        .try_insert(k, v)
                        .map_err(EngineError::from)?;
                    self.records += 1;
                }
            }
        }
        Ok(())
    }
}

/// The sharded hash grouping backend: `SHARD_COUNT` open-addressing tables
/// (pool-accounted, growing and tier-spilling on demand) fanned over the
/// worker-pool wave lanes, charged at the cardinality-aware probe cost
/// (`profile::hash_group_carded`) so a cache-resident table is cheap and a
/// spilled one pays the full Figure-2 rate.
#[derive(Debug)]
pub(crate) struct HashShardBackend {
    core: HashCore,
}

impl HashShardBackend {
    /// Fresh shard tables at the placement chosen for this task.
    pub(crate) fn new(ctx: &mut OpCtx<'_>, kind: AggKind) -> Result<Self, EngineError> {
        let (mem_kind, prio) = ctx.place();
        Ok(HashShardBackend {
            core: HashCore::new(ctx, SHARD_COUNT, kind, mem_kind, prio)?,
        })
    }
}

impl GroupingBackend for HashShardBackend {
    fn label(&self) -> &'static str {
        "hash"
    }

    fn ingest(&mut self, ctx: &mut OpCtx<'_>, kpa: Kpa, p: &AggParams) -> Result<(), EngineError> {
        let n = kpa.len();
        if n == 0 {
            return Ok(());
        }
        self.core.records += n as u64;
        let parts = HashCore::gather(&kpa, p, SHARD_COUNT);
        self.core.insert_parallel(ctx, parts)?;
        // Charge at the observed table size: the model stays honest even
        // when the adaptive estimate that chose this backend was wrong.
        let mut prof =
            profile::hash_group_carded(n, self.core.groups().max(1), self.core.table_kind());
        if !p.count_only() {
            // One random value dereference per pair (same gather the sort
            // path pays inside its keyed reduction).
            prof = prof.merge(&AccessProfile::new().rand(MemKind::Dram, n as f64));
        }
        ctx.charged(16, |e| e.charge(&prof));
        Ok(())
    }

    fn close(
        &mut self,
        ctx: &mut OpCtx<'_>,
        p: &AggParams,
        start: u64,
        rows: &mut Vec<u64>,
    ) -> Result<u64, EngineError> {
        let prof = profile::hash_drain(
            self.core.slots(),
            self.core.groups(),
            self.core.table_kind(),
        );
        ctx.charged(16, |e| e.charge(&prof));
        Ok(self.core.drain(p, start, rows))
    }

    fn records(&self) -> u64 {
        self.core.records
    }

    fn snapshot(
        &self,
        ctx: &mut OpCtx<'_>,
        window: u64,
        out: &mut Vec<StateEntry>,
    ) -> Result<(), EngineError> {
        let prof = profile::hash_drain(
            self.core.slots(),
            self.core.groups(),
            self.core.table_kind(),
        );
        ctx.charged(16, |e| e.charge(&prof));
        out.push(
            self.core
                .snapshot_entry(window, PORT_HASH_SCALAR, PORT_HASH_VALUES),
        );
        Ok(())
    }

    fn restore_entry(&mut self, _ctx: &mut OpCtx<'_>, e: &StateEntry) -> Result<(), EngineError> {
        self.core.restore_rows(e)
    }
}

/// Extra CPU cycles per record the row-engine baseline pays on top of the
/// hash probe itself (record dispatch, row copies, virtual-call overhead).
/// Mirrors `sbx-baselines`' calibrated `ROW_ENGINE_CYCLES_PER_RECORD_KNL`
/// (5 900) minus the `HASH_CYCLES` (500) already charged by the grouping
/// profile; the two constants are cross-checked by that crate's tests.
const ROW_ENGINE_EXTRA_CYCLES: f64 = 5_400.0;

/// The Flink-class row-engine baseline as a grouping backend: one DRAM
/// hash table, serial inserts, charged at the row engine's calibrated
/// per-record cost. Exists to be measured against (the adaptive policy
/// never selects it).
#[derive(Debug)]
pub(crate) struct RowBaselineBackend {
    core: HashCore,
}

impl RowBaselineBackend {
    /// A fresh single-shard DRAM table.
    pub(crate) fn new(ctx: &mut OpCtx<'_>, kind: AggKind) -> Result<Self, EngineError> {
        Ok(RowBaselineBackend {
            core: HashCore::new(ctx, 1, kind, MemKind::Dram, Priority::Normal)?,
        })
    }
}

impl GroupingBackend for RowBaselineBackend {
    fn label(&self) -> &'static str {
        "row"
    }

    fn ingest(&mut self, ctx: &mut OpCtx<'_>, kpa: Kpa, p: &AggParams) -> Result<(), EngineError> {
        let n = kpa.len();
        if n == 0 {
            return Ok(());
        }
        self.core.records += n as u64;
        let parts = HashCore::gather(&kpa, p, 1);
        self.core.insert_parallel(ctx, parts)?;
        let prof = profile::hash_group(n, MemKind::Dram).cpu(n as f64 * ROW_ENGINE_EXTRA_CYCLES);
        ctx.charged(16, |e| e.charge(&prof));
        Ok(())
    }

    fn close(
        &mut self,
        ctx: &mut OpCtx<'_>,
        p: &AggParams,
        start: u64,
        rows: &mut Vec<u64>,
    ) -> Result<u64, EngineError> {
        let prof = profile::hash_drain(self.core.slots(), self.core.groups(), MemKind::Dram);
        ctx.charged(16, |e| e.charge(&prof));
        Ok(self.core.drain(p, start, rows))
    }

    fn records(&self) -> u64 {
        self.core.records
    }

    fn snapshot(
        &self,
        ctx: &mut OpCtx<'_>,
        window: u64,
        out: &mut Vec<StateEntry>,
    ) -> Result<(), EngineError> {
        let prof = profile::hash_drain(self.core.slots(), self.core.groups(), MemKind::Dram);
        ctx.charged(16, |e| e.charge(&prof));
        out.push(
            self.core
                .snapshot_entry(window, PORT_ROW_SCALAR, PORT_ROW_VALUES),
        );
        Ok(())
    }

    fn restore_entry(&mut self, _ctx: &mut OpCtx<'_>, e: &StateEntry) -> Result<(), EngineError> {
        self.core.restore_rows(e)
    }
}

// ---------------------------------------------------------------------------
// Adaptive decision
// ---------------------------------------------------------------------------

/// Exponentially-smoothed history of closed windows feeding the adaptive
/// decision (integer arithmetic only: `ema ← (3·ema + x) / 4`).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AdaptState {
    /// Smoothed records per window.
    pub records_ema: u64,
    /// Smoothed distinct groups per window.
    pub groups_ema: u64,
    /// Windows closed so far.
    pub windows_seen: u64,
}

impl AdaptState {
    /// Folds one closed window into the history.
    pub(crate) fn observe_window(&mut self, records: u64, groups: u64) {
        if self.windows_seen == 0 {
            self.records_ema = records;
            self.groups_ema = groups;
        } else {
            self.records_ema = (3 * self.records_ema + records) / 4;
            self.groups_ema = (3 * self.groups_ema + groups) / 4;
        }
        self.windows_seen += 1;
    }
}

/// The adaptive choice for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BackendChoice {
    /// KPA sort-merge.
    Sort,
    /// Sharded hash.
    Hash,
}

/// Decides the backend for a new window from the first arriving KPA.
///
/// Deterministic by construction: inputs are the key bytes (via the
/// [`GroupSketch`]), the closed-window history, the machine model, and the
/// KPA tier — never thread counts, wall-clock, or allocator state. The
/// first window always takes the paper's sort-merge default (no history to
/// trust; mispredicting hash on a high-cardinality window costs far more
/// than one sorted window forgoes).
///
/// Later windows estimate the window's records (history, floored by this
/// KPA) and distinct groups (sketch vs. history, capped by records), then
/// discount the table footprint by the heavy-hitter share — skewed streams
/// keep their hot slots resident even at high nominal cardinality.
///
/// Both sides are modelled the way the backends actually charge a
/// bundle-fed window: the sort side as per-bundle chunk sorts plus one
/// close-time k-way merge and the keyed reduction
/// ([`profile::sort_chunked`]); the hash side with the table *growing*
/// across the window, so early bundles probe a resident table even when
/// the final one spills ([`profile::hash_group_grown`]), plus the
/// close-time drain. The cheaper modelled profile wins.
pub(crate) fn decide_backend(
    env: &MemEnv,
    kpa: &Kpa,
    p: &AggParams,
    table_kind: MemKind,
    adapt: &AdaptState,
) -> BackendChoice {
    if adapt.windows_seen == 0 {
        return BackendChoice::Sort;
    }
    let mut sk = GroupSketch::new();
    sk.observe_all(kpa.keys());
    let est_records = adapt.records_ema.max(kpa.len() as u64).max(1);
    let est_groups = adapt
        .groups_ema
        .max(sk.distinct_estimate())
        .clamp(1, est_records);
    // A key owning h‰ of the stream keeps its slot hot; discount half the
    // heavy share from the effective (cache-relevant) table size.
    let heavy = sk.heavy_permille();
    let eff_groups = est_groups
        .saturating_sub(est_groups.saturating_mul(heavy) / 2000)
        .max(1);

    let n = est_records as usize;
    // This KPA is one bundle of the window; the backends charge per
    // bundle. Cap the chunk count so a tiny probe KPA cannot inflate the
    // modelled merge fan-in beyond anything the engine produces.
    let chunk = kpa.len().max(1);
    let chunks = n.div_ceil(chunk).min(1024);
    let cores = env.machine().cores;
    let cost = env.cost();

    let mut sort_prof = profile::sort_chunked(n, chunk, table_kind)
        .merge(&profile::merge_kway(n, chunks, table_kind, table_kind))
        .merge(&profile::reduce_keyed(n, table_kind));
    if p.early {
        // Early aggregation adds a per-bundle pre-reduce pass (and the
        // re-extraction of the partials) before the close-time merge.
        sort_prof = sort_prof
            .merge(&profile::reduce_keyed(n, table_kind))
            .merge(&profile::extract(n, 24, table_kind));
    }

    let g = eff_groups as usize;
    let slots = (eff_groups as f64 * profile::HASH_LOAD_INV) as usize;
    let mut hash_prof = profile::hash_group_grown(n, g, table_kind)
        .merge(&profile::hash_drain(slots, g, table_kind));
    if !p.count_only() {
        hash_prof = hash_prof.merge(&AccessProfile::new().rand(MemKind::Dram, n as f64));
    }
    if cost.time_secs(&hash_prof, cores) < cost.time_secs(&sort_prof, cores) {
        BackendChoice::Hash
    } else {
        BackendChoice::Sort
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DemandBalancer, EngineMode, ImpactTag};
    use sbx_simmem::{MachineConfig, MemEnv};

    fn mk_kpa(env: &MemEnv, ctx: &mut OpCtx<'_>, pairs: &[(u64, u64)]) -> Kpa {
        let mut flat: Vec<u64> = Vec::new();
        for &(k, v) in pairs {
            flat.extend_from_slice(&[k, v, 0]);
        }
        let b = RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap();
        ctx.extract(&b, Col(0)).unwrap()
    }

    fn harness() -> (MemEnv, DemandBalancer) {
        (
            MemEnv::new(MachineConfig::knl().scaled(0.01)),
            DemandBalancer::new(),
        )
    }

    fn close_with(
        backend: &mut dyn GroupingBackend,
        ctx: &mut OpCtx<'_>,
        p: &AggParams,
    ) -> Vec<u64> {
        let mut rows = Vec::new();
        backend.close(ctx, p, 0, &mut rows).unwrap();
        rows
    }

    /// All three backends must produce byte-identical close rows for every
    /// aggregate kind.
    #[test]
    fn backends_agree_on_every_kind() {
        let (env, mut bal) = harness();
        let pairs: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 17, (i * 13) % 97)).collect();
        for kind in [
            AggKind::Sum,
            AggKind::Count,
            AggKind::Avg,
            AggKind::Median,
            AggKind::TopK(3),
            AggKind::UniqueCount,
        ] {
            let p = AggParams {
                kind,
                value_col: Col(1),
                early: matches!(kind, AggKind::Sum | AggKind::Count),
            };
            let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
            let mut sort_b = SortMergeBackend::new();
            let mut hash_b = HashShardBackend::new(&mut ctx, kind).unwrap();
            let mut row_b = RowBaselineBackend::new(&mut ctx, kind).unwrap();
            for chunk in pairs.chunks(100) {
                let kpa = mk_kpa(&env, &mut ctx, chunk);
                sort_b.ingest(&mut ctx, kpa, &p).unwrap();
                let kpa = mk_kpa(&env, &mut ctx, chunk);
                hash_b.ingest(&mut ctx, kpa, &p).unwrap();
                let kpa = mk_kpa(&env, &mut ctx, chunk);
                row_b.ingest(&mut ctx, kpa, &p).unwrap();
            }
            let a = close_with(&mut sort_b, &mut ctx, &p);
            let b = close_with(&mut hash_b, &mut ctx, &p);
            let c = close_with(&mut row_b, &mut ctx, &p);
            assert_eq!(a, b, "sort vs hash rows for {kind:?}");
            assert_eq!(a, c, "sort vs row rows for {kind:?}");
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn hash_snapshot_roundtrips_scalar_and_values() {
        let (env, mut bal) = harness();
        for kind in [AggKind::Sum, AggKind::Median] {
            let p = AggParams {
                kind,
                value_col: Col(1),
                early: false,
            };
            let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
            let mut orig = HashShardBackend::new(&mut ctx, kind).unwrap();
            let pairs: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 23, i)).collect();
            let kpa = mk_kpa(&env, &mut ctx, &pairs);
            orig.ingest(&mut ctx, kpa, &p).unwrap();

            let mut entries = Vec::new();
            orig.snapshot(&mut ctx, 0, &mut entries).unwrap();
            assert_eq!(entries.len(), 1);

            let mut restored = HashShardBackend::new(&mut ctx, kind).unwrap();
            restored.restore_entry(&mut ctx, &entries[0]).unwrap();
            assert_eq!(restored.records(), orig.records());
            assert_eq!(
                close_with(&mut orig, &mut ctx, &p),
                close_with(&mut restored, &mut ctx, &p),
                "restore must reproduce close bytes for {kind:?}"
            );
        }
    }

    #[test]
    fn adaptive_cold_start_is_sort_then_history_drives_hash() {
        let (env, mut bal) = harness();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let p = AggParams {
            kind: AggKind::Count,
            value_col: Col(1),
            early: true,
        };
        let pairs: Vec<(u64, u64)> = (0..2000u64).map(|i| (i % 100, i)).collect();
        let kpa = mk_kpa(&env, &mut ctx, &pairs);

        let mut adapt = AdaptState::default();
        assert_eq!(
            decide_backend(&env, &kpa, &p, MemKind::Hbm, &adapt),
            BackendChoice::Sort,
            "window 0 takes the paper default"
        );
        // Low-cardinality history: hash must win from window 1 on.
        adapt.observe_window(2000, 100);
        assert_eq!(
            decide_backend(&env, &kpa, &p, MemKind::Hbm, &adapt),
            BackendChoice::Hash
        );
        // High-cardinality history: sort wins even though the bundle's own
        // sketch only sees 100 keys.
        let mut adapt_hi = AdaptState::default();
        adapt_hi.observe_window(8_000_000, 4_000_000);
        assert_eq!(
            decide_backend(&env, &kpa, &p, MemKind::Hbm, &adapt_hi),
            BackendChoice::Sort
        );
    }

    #[test]
    fn ema_smooths_and_first_window_seeds() {
        let mut a = AdaptState::default();
        a.observe_window(1000, 10);
        assert_eq!((a.records_ema, a.groups_ema, a.windows_seen), (1000, 10, 1));
        a.observe_window(2000, 30);
        assert_eq!(a.records_ema, (3 * 1000 + 2000) / 4);
        assert_eq!(a.groups_ema, (3 * 10 + 30) / 4);
    }

    #[test]
    fn grouping_spec_parses_cli_spellings() {
        assert_eq!(GroupingSpec::parse("sort"), Some(GroupingSpec::SortMerge));
        assert_eq!(GroupingSpec::parse("hash"), Some(GroupingSpec::Hash));
        assert_eq!(GroupingSpec::parse("row"), Some(GroupingSpec::RowBaseline));
        assert_eq!(
            GroupingSpec::parse("adaptive"),
            Some(GroupingSpec::Adaptive)
        );
        assert_eq!(GroupingSpec::parse("bogus"), None);
        assert_eq!(GroupingSpec::Adaptive.label(), "adaptive");
        assert_eq!(GroupingSpec::default(), GroupingSpec::SortMerge);
    }
}

//! Table 2: wall-clock microbenchmarks of every KPA streaming primitive
//! (real host execution time, not modelled time).

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::sync::Arc;

use sbx_bench::harness::time_fn;
use sbx_kpa::hash::group_pairs;
use sbx_kpa::{join_sorted, reduce_keyed, ExecCtx, Kpa};
use sbx_prng::SbxRng;
use sbx_records::{Col, RecordBundle, Schema};
use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};

const N: usize = 100_000;
const SAMPLES: usize = 10;

fn env() -> MemEnv {
    MemEnv::new(MachineConfig::knl().scaled(0.25))
}

fn bundle(env: &MemEnv, n: usize, keys: u64) -> Arc<RecordBundle> {
    let mut rng = SbxRng::seed_from_u64(7);
    let rows: Vec<u64> = (0..n)
        .flat_map(|i| [rng.random_range(0..keys), rng.random(), i as u64])
        .collect();
    RecordBundle::from_rows(env, Schema::kvt(), &rows).expect("fits")
}

fn sorted_kpa(env: &MemEnv, ctx: &mut ExecCtx, n: usize, keys: u64) -> Kpa {
    let b = bundle(env, n, keys);
    let mut kpa = Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).expect("fits");
    kpa.sort(ctx, 2).expect("sort");
    kpa
}

fn main() {
    let env = env();
    println!("table2");

    let b = bundle(&env, N, 1_000);
    time_fn("extract_100k", SAMPLES, || {
        let mut ctx = ExecCtx::new(&env);
        Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).expect("fits")
    });

    time_fn("sort_100k", SAMPLES, || {
        let mut ctx = ExecCtx::new(&env);
        let mut kpa =
            Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).expect("fits");
        kpa.sort(&mut ctx, 2).expect("sort");
        kpa
    });

    time_fn("key_swap_100k", SAMPLES, || {
        let mut ctx = ExecCtx::new(&env);
        let mut kpa =
            Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).expect("fits");
        kpa.key_swap(&mut ctx, Col(2));
        kpa
    });

    {
        let mut ctx = ExecCtx::new(&env);
        let kpa = sorted_kpa(&env, &mut ctx, N, 1_000);
        time_fn("materialize_100k", SAMPLES, || {
            let mut ctx = ExecCtx::new(&env);
            kpa.materialize(&mut ctx).expect("fits")
        });
        time_fn("select_100k", SAMPLES, || {
            let mut ctx = ExecCtx::new(&env);
            kpa.select(&mut ctx, Priority::Normal, |k| k % 2 == 0)
                .expect("fits")
        });
        time_fn("partition_100k", SAMPLES, || {
            let mut ctx = ExecCtx::new(&env);
            kpa.partition_by(&mut ctx, Priority::Normal, |k| k / 100)
                .expect("fits")
        });
        time_fn("reduce_keyed_100k", SAMPLES, || {
            let mut ctx = ExecCtx::new(&env);
            let mut sum = 0u64;
            reduce_keyed(&mut ctx, &kpa, Col(1), |g| {
                sum = sum.wrapping_add(g.values.len() as u64);
            });
            sum
        });
    }

    {
        let mut ctx = ExecCtx::new(&env);
        let a = sorted_kpa(&env, &mut ctx, N / 2, 1_000);
        let b2 = sorted_kpa(&env, &mut ctx, N / 2, 1_000);
        time_fn("merge_2x50k", SAMPLES, || {
            let mut ctx = ExecCtx::new(&env);
            Kpa::merge(&mut ctx, &a, &b2, MemKind::Hbm, Priority::Normal).expect("fits")
        });
    }

    {
        let mut ctx = ExecCtx::new(&env);
        let a = sorted_kpa(&env, &mut ctx, N / 2, 100_000);
        let b2 = sorted_kpa(&env, &mut ctx, N / 2, 100_000);
        time_fn("join_2x50k", SAMPLES, || {
            let mut ctx = ExecCtx::new(&env);
            let mut n = 0usize;
            join_sorted(&mut ctx, &a, &b2, 32, |_, _, _, _| n += 1);
            n
        });
    }

    {
        let mut rng = SbxRng::seed_from_u64(3);
        let keys: Vec<u64> = (0..N).map(|_| rng.random_range(0..1_000)).collect();
        let vals: Vec<u64> = (0..N).map(|_| rng.random()).collect();
        time_fn("hash_group_100k", SAMPLES, || {
            let mut ctx = ExecCtx::new(&env);
            group_pairs(&mut ctx, &keys, &vals, MemKind::Dram, Priority::Normal).expect("fits")
        });
    }
}

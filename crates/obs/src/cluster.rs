//! Cluster-wide observability: cross-shard span stitching, the distributed
//! critical path, and the shard-health monitor (DESIGN.md §13).
//!
//! Each shard engine records its own span stream on the simulated clock
//! (DESIGN.md §10); the cluster driver prices fabric work (shuffle links,
//! barrier alignment) from the `TrafficMatrix`/`LinkModel` and hands both to
//! the deterministic stitcher here. The stitcher merges the per-shard
//! streams into one cluster trace with a shared id space — ids are
//! reassigned in (era, shard) order with the fabric block between eras, so
//! parent ids always precede child ids — and adds availability edges:
//! *spine* edges linking each round's root to the latest same-stream span
//! that had finished by the root's start, and *cross-shard* edges routing
//! era-1 roots through the inbound shuffle link that produced their state.
//! Every synthesized edge satisfies `child.start_ns >= parent.end_ns`.
//!
//! On the stitched DAG, [`ClusterCriticalPath`] walks the longest chain and
//! attributes the end-to-end makespan into {operator compute, shuffle
//! transfer, barrier wait, straggler slack, fabric} with a cursor scan whose
//! integer contributions sum *exactly* to the makespan (gaps and remainders
//! land in `fabric`). [`HealthReport`] is a pure function of the cluster
//! metrics dump — no new clocks — so both artifacts are byte-identical
//! across same-seed runs.

use std::collections::BTreeMap;

use crate::detect::{sort_signals, ThresholdRule};
use crate::json::{fmt_f64, parse_flat_object, write_str, JsonValue};
use crate::metrics::MetricsDump;
use crate::profile::SpanRec;

/// Sentinel shard id of the fabric track (shuffle links and barrier
/// alignment). Real shard ids are small; the sentinel sorts last.
pub const FABRIC_SHARD: u32 = u32::MAX;

/// One shard engine's span stream, tagged with its `(shard, slot-epoch)`
/// identity. `slot_epoch` counts route-table eras: 0 before a rescale cut
/// (and for static runs), 1 after.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStream {
    /// Shard id within its era.
    pub shard: u32,
    /// Route-table era the stream ran under.
    pub slot_epoch: u32,
    /// The stream's spans, ids local to the stream.
    pub spans: Vec<SpanRec>,
}

/// A fabric event priced by the cluster driver: a barrier-alignment wait
/// (`cat == "barrier"`, the straggler gap between a shard's cut and the
/// cluster-wide cut clock) or a shuffle link transfer (`cat == "shuffle"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricEvent {
    /// Display name (e.g. `barrier.wait` or `link.0->2`).
    pub name: String,
    /// `barrier` (straggler wait) or `shuffle` (link transfer).
    pub cat: String,
    /// Shard whose era-0 stream this event extends.
    pub src_shard: u32,
    /// Destination shard (links); equals `src_shard` for barrier waits.
    pub dst_shard: u32,
    /// Checkpoint epoch of the cut this event belongs to.
    pub epoch: u64,
    /// Simulated start, nanoseconds.
    pub start_ns: u64,
    /// Simulated duration, nanoseconds.
    pub dur_ns: u64,
    /// Bytes moved (0 for barrier waits).
    pub bytes: u64,
}

/// One span of a stitched cluster trace: a [`SpanRec`] in the shared id
/// space plus its track identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpan {
    /// Owning shard, or [`FABRIC_SHARD`] for fabric spans.
    pub shard: u32,
    /// Route-table era (0 for fabric spans).
    pub slot_epoch: u32,
    /// The span, with stitched id/parent.
    pub span: SpanRec,
}

/// A stitched cluster trace: every shard stream plus the fabric, in one id
/// space, with spine and cross-shard availability edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterTrace {
    /// Stitched spans in id order per stream block.
    pub spans: Vec<ClusterSpan>,
}

/// Re-ids one stream into the shared id space, rewrites parents, and adds
/// spine edges from each round's root to the latest earlier span of the
/// same stream that had finished by the root's start. Roots with no spine
/// predecessor attach to `inbound` (the shard's inbound shuffle edge) when
/// its end precedes the root. Returns the stream tip `(end_ns, id)`.
fn stitch_stream(
    stream: &SpanStream,
    next_id: &mut u64,
    inbound: Option<(u64, u64)>,
    out: &mut Vec<ClusterSpan>,
) -> Option<(u64, u64)> {
    // Old-id order preserves parent-before-child (engines allocate span ids
    // in dependency order).
    let mut idx = Vec::new();
    for i in 0..stream.spans.len() {
        idx.push(i);
    }
    idx.sort_by_key(|&i| (stream.spans[i].id, i));
    let mut assigned = Vec::new();
    let mut id_map: BTreeMap<u64, u64> = BTreeMap::new();
    for &i in &idx {
        let new_id = *next_id;
        *next_id += 1;
        id_map.entry(stream.spans[i].id).or_insert(new_id);
        assigned.push((i, new_id));
    }
    // end_ns -> smallest stitched id finishing at that time, over spans
    // processed so far: the spine-edge candidates.
    let mut finished: BTreeMap<u64, u64> = BTreeMap::new();
    let mut tip: Option<(u64, u64)> = None;
    for &(i, new_id) in &assigned {
        let s = &stream.spans[i];
        let parent = match s.parent {
            Some(p) if p < s.id => id_map.get(&p).copied(),
            _ => {
                let spine = finished
                    .range(..=s.start_ns)
                    .next_back()
                    .map(|(_, &pid)| pid);
                match spine {
                    Some(pid) => Some(pid),
                    None => inbound
                        .filter(|&(iend, _)| iend <= s.start_ns)
                        .map(|(_, pid)| pid),
                }
            }
        };
        let end = s.end_ns();
        finished.entry(end).or_insert(new_id);
        let better = match tip {
            None => true,
            Some((tend, tid)) => end > tend || (end == tend && new_id < tid),
        };
        if better {
            tip = Some((end, new_id));
        }
        let mut span = s.clone();
        span.id = new_id;
        span.parent = parent;
        out.push(ClusterSpan {
            shard: stream.shard,
            slot_epoch: stream.slot_epoch,
            span,
        });
    }
    tip
}

impl ClusterTrace {
    /// Deterministically stitches per-shard streams and fabric events into
    /// one cluster trace. Streams are processed in `(slot_epoch, shard)`
    /// order; the fabric block takes the ids between era 0 and era 1, so
    /// parent ids precede child ids across every synthesized edge.
    pub fn stitch(streams: &[SpanStream], fabric: &[FabricEvent]) -> ClusterTrace {
        let mut order = Vec::new();
        for i in 0..streams.len() {
            order.push(i);
        }
        order.sort_by_key(|&i| (streams[i].slot_epoch, streams[i].shard, i));

        let mut out = Vec::new();
        let mut next_id = 0u64;
        // Tip per era-0 shard stream: the attachment point for fabric spans.
        let mut era0_tips: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for &i in &order {
            let s = &streams[i];
            if s.slot_epoch != 0 {
                continue;
            }
            if let Some(t) = stitch_stream(s, &mut next_id, None, &mut out) {
                era0_tips.insert(s.shard, t);
            }
        }

        // Fabric block: barrier waits chain onto their shard's tip, link
        // transfers onto their source's barrier wait (or tip). Edges are
        // only created when the parent has finished by the child's start.
        let mut barrier_of: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        let mut inbound_of: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        let mut fabric_tip: Option<(u64, u64)> = None;
        for e in fabric {
            let id = next_id;
            next_id += 1;
            let start = e.start_ns;
            let end = start.saturating_add(e.dur_ns);
            let tip_parent = era0_tips
                .get(&e.src_shard)
                .filter(|&&(tend, _)| tend <= start)
                .map(|&(_, pid)| pid);
            let parent = if e.cat == "barrier" {
                tip_parent
            } else {
                match barrier_of.get(&e.src_shard) {
                    Some(&(bend, bid)) if bend <= start => Some(bid),
                    _ => tip_parent,
                }
            };
            if e.cat == "barrier" {
                barrier_of.insert(e.src_shard, (end, id));
            } else {
                let better = match inbound_of.get(&e.dst_shard) {
                    None => true,
                    Some(&(iend, _)) => end > iend,
                };
                if better {
                    inbound_of.insert(e.dst_shard, (end, id));
                }
            }
            let better_tip = match fabric_tip {
                None => true,
                Some((tend, _)) => end > tend,
            };
            if better_tip {
                fabric_tip = Some((end, id));
            }
            out.push(ClusterSpan {
                shard: FABRIC_SHARD,
                slot_epoch: 0,
                span: SpanRec {
                    id,
                    parent,
                    name: e.name.clone(),
                    cat: e.cat.clone(),
                    lane: if e.cat == "barrier" { 0 } else { 1 },
                    round: 0,
                    epoch: e.epoch,
                    start_ns: start,
                    dur_ns: e.dur_ns,
                    records_in: e.bytes,
                    records_out: e.bytes,
                },
            });
        }

        // Era-1 streams: first roots attach to their shard's inbound link
        // (falling back to the latest fabric span), crossing the shard
        // boundary through the shuffle edge.
        for &i in &order {
            let s = &streams[i];
            if s.slot_epoch == 0 {
                continue;
            }
            let inbound = match inbound_of.get(&s.shard) {
                Some(&t) => Some(t),
                None => fabric_tip,
            };
            stitch_stream(s, &mut next_id, inbound, &mut out);
        }

        ClusterTrace { spans: out }
    }

    /// Exports the stitched trace as JSONL: the §10 span line format plus
    /// `shard`/`slot_epoch` keys, so `parse_spans_jsonl` still reads it.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for cs in &self.spans {
            let s = &cs.span;
            out.push_str(&format!("{{\"type\":\"span\",\"id\":{}", s.id));
            if let Some(parent) = s.parent {
                out.push_str(&format!(",\"parent\":{parent}"));
            }
            out.push_str(&format!(
                ",\"shard\":{},\"slot_epoch\":{}",
                cs.shard, cs.slot_epoch
            ));
            out.push_str(",\"name\":");
            write_str(&s.name, &mut out);
            out.push_str(",\"cat\":");
            write_str(&s.cat, &mut out);
            out.push_str(&format!(
                ",\"lane\":{},\"round\":{},\"epoch\":{},\"start_ns\":{},\"dur_ns\":{},\"records_in\":{},\"records_out\":{}}}\n",
                s.lane, s.round, s.epoch, s.start_ns, s.dur_ns, s.records_in, s.records_out
            ));
        }
        out
    }

    /// Exports the stitched trace in Chrome trace format (Perfetto): one
    /// process (track group) per shard plus a `fabric` process, named via
    /// `process_name` metadata events; `tid` is the operator lane.
    pub fn export_chrome(&self) -> String {
        let pid_of = |shard: u32| -> u64 {
            if shard == FABRIC_SHARD {
                0
            } else {
                shard as u64 + 1
            }
        };
        let mut shards = Vec::new();
        for cs in &self.spans {
            if !shards.contains(&cs.shard) {
                shards.push(cs.shard);
            }
        }
        shards.sort_unstable();
        let mut events = Vec::new();
        for &sh in &shards {
            let label = if sh == FABRIC_SHARD {
                String::from("fabric")
            } else {
                format!("shard {sh}")
            };
            let mut ev = format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":",
                pid_of(sh)
            );
            write_str(&label, &mut ev);
            ev.push_str("}}");
            events.push(ev);
        }
        for cs in &self.spans {
            let s = &cs.span;
            let mut ev = String::from("{\"name\":");
            write_str(&s.name, &mut ev);
            ev.push_str(",\"cat\":");
            write_str(&s.cat, &mut ev);
            ev.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"span\":{}",
                fmt_f64(s.start_ns as f64 / 1000.0),
                fmt_f64(s.dur_ns as f64 / 1000.0),
                pid_of(cs.shard),
                s.lane,
                s.id
            ));
            if let Some(parent) = s.parent {
                ev.push_str(&format!(",\"parent\":{parent}"));
            }
            ev.push_str(&format!(
                ",\"slot_epoch\":{},\"round\":{},\"epoch\":{},\"records_in\":{},\"records_out\":{}}}}}",
                cs.slot_epoch, s.round, s.epoch, s.records_in, s.records_out
            ));
            events.push(ev);
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Parses a stitched cluster trace JSONL export back into [`ClusterSpan`]s,
/// in file order. Lines without a `shard` key default to shard 0, era 0, so
/// single-engine span exports load as a one-shard cluster.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_cluster_spans_jsonl(text: &str) -> Result<Vec<ClusterSpan>, String> {
    let mut out = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let pairs = parse_flat_object(line).map_err(|e| format!("line {}: {e}", line_no + 1))?;
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let kind = get("type").and_then(JsonValue::as_str).unwrap_or("");
        if kind != "span" {
            return Err(format!("line {}: not a span line ({kind:?})", line_no + 1));
        }
        let num = |key: &str| get(key).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let text_of = |key: &str| {
            get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_owned()
        };
        let shard = match get("shard").and_then(JsonValue::as_f64) {
            // u32::MAX survives the f64 round trip exactly (it needs 32
            // bits of mantissa), so the fabric sentinel parses back.
            Some(v) => v as u32,
            None => 0,
        };
        out.push(ClusterSpan {
            shard,
            slot_epoch: num("slot_epoch") as u32,
            span: SpanRec {
                id: num("id"),
                parent: get("parent").and_then(JsonValue::as_f64).map(|p| p as u64),
                name: text_of("name"),
                cat: text_of("cat"),
                lane: num("lane"),
                round: num("round"),
                epoch: num("epoch"),
                start_ns: num("start_ns"),
                dur_ns: num("dur_ns"),
                records_in: num("records_in"),
                records_out: num("records_out"),
            },
        });
    }
    Ok(out)
}

/// One step of the distributed critical chain, root first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedStep {
    /// Stitched span id.
    pub id: u64,
    /// Owning shard ([`FABRIC_SHARD`] for fabric steps).
    pub shard: u32,
    /// Route-table era.
    pub slot_epoch: u32,
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// Simulated start, nanoseconds.
    pub start_ns: u64,
    /// Simulated duration, nanoseconds.
    pub dur_ns: u64,
}

/// Critical-versus-slack totals for one shard stream (or the fabric row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAttribution {
    /// Shard id, or [`FABRIC_SHARD`] for the fabric row.
    pub shard: u32,
    /// Route-table era (0 for the fabric row).
    pub slot_epoch: u32,
    /// Total span nanoseconds recorded by this stream.
    pub total_ns: u64,
    /// Nanoseconds this stream contributed to the critical chain.
    pub critical_ns: u64,
}

impl ShardAttribution {
    /// Stream time off the critical chain.
    pub fn slack_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.critical_ns)
    }
}

/// The longest chain within one checkpoint epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPath {
    /// Checkpoint epoch.
    pub epoch: u64,
    /// Summed nanoseconds on the epoch's longest chain.
    pub critical_ns: u64,
    /// Steps on that chain.
    pub steps: u64,
    /// Simulated end of the chain, nanoseconds.
    pub end_ns: u64,
}

/// Distributed critical path over a stitched cluster trace.
///
/// The five attribution buckets partition the makespan exactly:
/// `compute_ns + shuffle_ns + barrier_wait_ns + straggler_ns + fabric_ns
/// == makespan_ns`, with every gap or integer remainder landing in
/// `fabric_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCriticalPath {
    /// End of the last stitched span: the end-to-end simulated makespan.
    pub makespan_ns: u64,
    /// Chain time in operator invocations (task/watermark/close spans).
    pub compute_ns: u64,
    /// Chain time in fabric shuffle-link transfers.
    pub shuffle_ns: u64,
    /// Chain time in engine barrier drives (alignment and commit work).
    pub barrier_wait_ns: u64,
    /// Chain time in fabric barrier waits: the gap between a shard's own
    /// cut and the cluster-wide cut clock (waiting for the slowest shard).
    pub straggler_ns: u64,
    /// Makespan not covered by chain spans: scheduling gaps and integer
    /// remainders.
    pub fabric_ns: u64,
    /// The distributed chain, root first.
    pub steps: Vec<DistributedStep>,
    /// Per-stream critical-vs-slack rows, `(slot_epoch, shard)` ascending,
    /// fabric row last.
    pub per_shard: Vec<ShardAttribution>,
    /// Longest chain per checkpoint epoch, ascending by epoch.
    pub per_epoch: Vec<EpochPath>,
}

/// Latest-ending span (ties toward the smallest id) among `spans`.
fn latest_tip<'a>(spans: impl Iterator<Item = &'a ClusterSpan>) -> Option<&'a ClusterSpan> {
    let mut tip: Option<&ClusterSpan> = None;
    for cs in spans {
        let better = match tip {
            None => true,
            Some(t) => {
                cs.span.end_ns() > t.span.end_ns()
                    || (cs.span.end_ns() == t.span.end_ns() && cs.span.id < t.span.id)
            }
        };
        if better {
            tip = Some(cs);
        }
    }
    tip
}

impl ClusterCriticalPath {
    /// Runs the analysis over a stitched trace. Empty input is all-zero.
    pub fn compute(trace: &ClusterTrace) -> ClusterCriticalPath {
        let spans = &trace.spans;
        let mut by_id: BTreeMap<u64, &ClusterSpan> = BTreeMap::new();
        for cs in spans {
            by_id.entry(cs.span.id).or_insert(cs);
        }
        let tip = latest_tip(spans.iter());
        let mut chain = Vec::new();
        let mut cur = tip;
        while let Some(cs) = cur {
            chain.push(cs);
            // Ids are allocated in dependency order, so the walk terminates
            // even on corrupted inputs.
            cur = cs
                .span
                .parent
                .and_then(|p| by_id.get(&p).copied())
                .filter(|pcs| pcs.span.id < cs.span.id);
        }
        chain.reverse();

        let makespan_ns = tip.map_or(0, |t| t.span.end_ns());

        // Stream totals for the critical-vs-slack table.
        let mut totals: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut fabric_total = 0u64;
        for cs in spans {
            if cs.shard == FABRIC_SHARD {
                fabric_total += cs.span.dur_ns;
            } else {
                *totals.entry((cs.slot_epoch, cs.shard)).or_insert(0) += cs.span.dur_ns;
            }
        }

        // Cursor scan over the chain: every nanosecond from 0 to the
        // makespan is assigned to exactly one bucket, so the five buckets
        // partition the makespan exactly in integer arithmetic.
        let mut compute_ns = 0u64;
        let mut shuffle_ns = 0u64;
        let mut barrier_wait_ns = 0u64;
        let mut straggler_ns = 0u64;
        let mut fabric_ns = 0u64;
        let mut crit: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut fabric_crit = 0u64;
        let mut cursor = 0u64;
        for cs in &chain {
            let s = &cs.span;
            if s.start_ns > cursor {
                fabric_ns += s.start_ns - cursor;
                cursor = s.start_ns;
            }
            let end = s.end_ns();
            if end > cursor {
                let contrib = end - cursor;
                cursor = end;
                if cs.shard == FABRIC_SHARD {
                    fabric_crit += contrib;
                    if s.cat == "barrier" {
                        straggler_ns += contrib;
                    } else {
                        shuffle_ns += contrib;
                    }
                } else {
                    *crit.entry((cs.slot_epoch, cs.shard)).or_insert(0) += contrib;
                    if s.cat == "barrier" {
                        barrier_wait_ns += contrib;
                    } else {
                        compute_ns += contrib;
                    }
                }
            }
        }

        let mut per_shard = Vec::new();
        for (&(era, shard), &total_ns) in &totals {
            per_shard.push(ShardAttribution {
                shard,
                slot_epoch: era,
                total_ns,
                critical_ns: crit.get(&(era, shard)).copied().unwrap_or(0),
            });
        }
        if fabric_total > 0 || fabric_crit > 0 {
            per_shard.push(ShardAttribution {
                shard: FABRIC_SHARD,
                slot_epoch: 0,
                total_ns: fabric_total,
                critical_ns: fabric_crit,
            });
        }

        // Per-epoch longest chains: restrict the same walk to one epoch's
        // spans (fabric spans carry the cut epoch).
        let mut epochs: BTreeMap<u64, Vec<&ClusterSpan>> = BTreeMap::new();
        for cs in spans {
            epochs.entry(cs.span.epoch).or_default().push(cs);
        }
        let mut per_epoch = Vec::new();
        for (&epoch, members) in &epochs {
            let mut member_ids: BTreeMap<u64, &ClusterSpan> = BTreeMap::new();
            for cs in members {
                member_ids.entry(cs.span.id).or_insert(cs);
            }
            let etip = latest_tip(members.iter().copied());
            let mut critical_ns = 0u64;
            let mut steps = 0u64;
            let end_ns = etip.map_or(0, |t| t.span.end_ns());
            let mut cur = etip;
            while let Some(cs) = cur {
                critical_ns += cs.span.dur_ns;
                steps += 1;
                cur = cs
                    .span
                    .parent
                    .and_then(|p| member_ids.get(&p).copied())
                    .filter(|pcs| pcs.span.id < cs.span.id);
            }
            per_epoch.push(EpochPath {
                epoch,
                critical_ns,
                steps,
                end_ns,
            });
        }

        let mut steps = Vec::new();
        for cs in &chain {
            steps.push(DistributedStep {
                id: cs.span.id,
                shard: cs.shard,
                slot_epoch: cs.slot_epoch,
                name: cs.span.name.clone(),
                cat: cs.span.cat.clone(),
                start_ns: cs.span.start_ns,
                dur_ns: cs.span.dur_ns,
            });
        }

        ClusterCriticalPath {
            makespan_ns,
            compute_ns,
            shuffle_ns,
            barrier_wait_ns,
            straggler_ns,
            fabric_ns,
            steps,
            per_shard,
            per_epoch,
        }
    }

    /// Sum of the five attribution buckets; equals `makespan_ns` exactly.
    pub fn attributed_ns(&self) -> u64 {
        self.compute_ns
            + self.shuffle_ns
            + self.barrier_wait_ns
            + self.straggler_ns
            + self.fabric_ns
    }

    /// Renders a deterministic text report: the attribution split, the
    /// per-shard critical-vs-slack table, per-epoch chains, and the last
    /// `k` chain steps.
    pub fn render(&self, k: usize) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let pct = |ns: u64| {
            if self.makespan_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.makespan_ns as f64
            }
        };
        let shard_label = |shard: u32, era: u32| {
            if shard == FABRIC_SHARD {
                String::from("fabric")
            } else {
                format!("shard {shard} era {era}")
            }
        };
        let mut out = String::new();
        out.push_str(&format!(
            "cluster critical path: {} steps, {:.3} ms makespan\n",
            self.steps.len(),
            ms(self.makespan_ns),
        ));
        if self.steps.is_empty() {
            out.push_str("  (no spans)\n");
            return out;
        }
        out.push_str("  attribution (partitions the makespan exactly):\n");
        for (label, ns) in [
            ("compute", self.compute_ns),
            ("shuffle", self.shuffle_ns),
            ("barrier-wait", self.barrier_wait_ns),
            ("straggler-slack", self.straggler_ns),
            ("fabric", self.fabric_ns),
        ] {
            out.push_str(&format!(
                "    {:<16} {:>10.3} ms ({:>5.1}%)\n",
                label,
                ms(ns),
                pct(ns)
            ));
        }
        out.push_str("  per-shard critical vs slack:\n");
        for row in &self.per_shard {
            out.push_str(&format!(
                "    {:<16} total {:>10.3} ms  crit {:>10.3} ms  slack {:>10.3} ms\n",
                shard_label(row.shard, row.slot_epoch),
                ms(row.total_ns),
                ms(row.critical_ns),
                ms(row.slack_ns()),
            ));
        }
        out.push_str("  per-epoch longest chains:\n");
        for e in &self.per_epoch {
            out.push_str(&format!(
                "    epoch {:>3}  crit {:>10.3} ms in {:>4} steps, ends at {:.3} ms\n",
                e.epoch,
                ms(e.critical_ns),
                e.steps,
                ms(e.end_ns),
            ));
        }
        let tail = k.min(self.steps.len());
        out.push_str(&format!(
            "  chain tail (last {} of {} steps):\n",
            tail,
            self.steps.len()
        ));
        for step in &self.steps[self.steps.len() - tail..] {
            out.push_str(&format!(
                "    {:<16} {:<18} {:<9} @{:.3} +{:.3} ms\n",
                shard_label(step.shard, step.slot_epoch),
                step.name,
                step.cat,
                ms(step.start_ns),
                ms(step.dur_ns),
            ));
        }
        out
    }
}

/// Thresholds for the shard-health detectors. Every detector is a pure
/// function of the cluster metrics dump — no new clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// A shard trips `straggler` when its last round timestamp exceeds this
    /// multiple of the mean across shards.
    pub straggler_ratio: f64,
    /// A round trips `watermark-lag` when the spread of per-shard round
    /// timestamps exceeds this many simulated seconds.
    pub watermark_lag_secs: f64,
    /// The hottest slot trips `slot-skew` when its record count exceeds
    /// this multiple of the mean slot load.
    pub skew_ratio: f64,
    /// A link trips `link-saturation` when its transfer time is at least
    /// this fraction of the whole shuffle's drain time.
    pub saturation_ratio: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            straggler_ratio: 1.5,
            watermark_lag_secs: 0.5,
            skew_ratio: 2.0,
            saturation_ratio: 0.5,
        }
    }
}

/// One tripped health detector: `slot-skew`, `link-saturation`,
/// `straggler`, or `watermark-lag` on a subject like `slot12`,
/// `link0->2`, `shard1`, or `round3`.
///
/// Since the detectors moved onto the shared rule framework
/// (DESIGN.md §15) this is the same type as the engine-local detector
/// verdict, [`crate::Signal`].
pub type HealthSignal = crate::detect::Signal;

/// Shard-health report: tripped signals plus the hot-slot/rebalance facts
/// the Zipf scenario asserts on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Tripped signals, sorted by (kind, round, subject).
    pub signals: Vec<HealthSignal>,
    /// The hottest routing slot by record count, when slot counters exist.
    pub hot_slot: Option<u32>,
    /// Slots the rebalance retarget actually moved, ascending.
    pub moved_slots: Vec<u32>,
}

impl HealthReport {
    /// Evaluates every detector against a cluster metrics dump.
    pub fn compute(dump: &MetricsDump, cfg: &HealthConfig) -> HealthReport {
        let mut signals = Vec::new();

        // Rebalance facts: which slots the retarget moved.
        let mut moved_slots = Vec::new();
        for (name, _) in &dump.counters {
            if let Some(rest) = name.strip_prefix("cluster.rescale.moved.slot") {
                if let Ok(j) = rest.parse::<u32>() {
                    moved_slots.push(j);
                }
            }
        }
        moved_slots.sort_unstable();

        // Slot-occupancy skew from `cluster.slot<j>.records`.
        let mut slots = Vec::new();
        for (name, value) in &dump.counters {
            if let Some(rest) = name.strip_prefix("cluster.slot") {
                if let Some(idx) = rest.strip_suffix(".records") {
                    if let Ok(j) = idx.parse::<u32>() {
                        slots.push((j, *value));
                    }
                }
            }
        }
        slots.sort_unstable();
        let mut hot_slot = None;
        if let Some(&first) = slots.first() {
            let mut total = 0u64;
            let mut hot = first;
            for &(j, v) in &slots {
                total += v;
                if v > hot.1 {
                    hot = (j, v);
                }
            }
            hot_slot = Some(hot.0);
            let mean = total as f64 / slots.len() as f64;
            if mean > 0.0 {
                let ratio = hot.1 as f64 / mean;
                let moved = if moved_slots.contains(&hot.0) {
                    "; moved by rebalance"
                } else {
                    ""
                };
                let rule = ThresholdRule::above("slot-skew", cfg.skew_ratio);
                if let Some(sig) = rule.check(
                    ratio,
                    format!("slot{}", hot.0),
                    0,
                    format!(
                        "hot slot {} carries {} records, {ratio:.2}x the mean slot load{moved}",
                        hot.0, hot.1
                    ),
                ) {
                    signals.push(sig);
                }
            }
        }

        // Link saturation from `cluster.link.<s>.<d>.ns` vs the shuffle's
        // overall drain time.
        let total_shuffle_ns = dump.counter("cluster.shuffle.ns").unwrap_or(0);
        if total_shuffle_ns > 0 {
            for (name, value) in &dump.counters {
                let Some(rest) = name.strip_prefix("cluster.link.") else {
                    continue;
                };
                let Some(pair) = rest.strip_suffix(".ns") else {
                    continue;
                };
                let Some((s, d)) = pair.split_once('.') else {
                    continue;
                };
                let (Ok(src), Ok(dst)) = (s.parse::<u32>(), d.parse::<u32>()) else {
                    continue;
                };
                let ratio = *value as f64 / total_shuffle_ns as f64;
                let rule = ThresholdRule::at_least("link-saturation", cfg.saturation_ratio);
                if let Some(sig) = rule.check(
                    ratio,
                    format!("link{src}->{dst}"),
                    0,
                    format!(
                        "link {src}->{dst} holds {} ns of the {} ns shuffle drain",
                        value, total_shuffle_ns
                    ),
                ) {
                    signals.push(sig);
                }
            }
        }

        // Straggler score and watermark lag from the adopted per-shard
        // round series (`cluster.shard<i>.engine.engine.round`).
        let mut shard_rows: Vec<(u32, Vec<f64>)> = Vec::new();
        for s in &dump.series {
            let Some(rest) = s.name.strip_prefix("cluster.shard") else {
                continue;
            };
            let Some((idx, tail)) = rest.split_once('.') else {
                continue;
            };
            if tail != "engine.engine.round" {
                continue;
            }
            let Ok(shard) = idx.parse::<u32>() else {
                continue;
            };
            let Some(col) = s.field_index("at_secs") else {
                continue;
            };
            let mut ats = Vec::new();
            for row in &s.rows {
                ats.push(row.get(col).copied().unwrap_or(0.0));
            }
            shard_rows.push((shard, ats));
        }
        shard_rows.sort_by_key(|&(shard, _)| shard);
        if shard_rows.len() >= 2 {
            let mut sum = 0.0f64;
            let mut lasts = Vec::new();
            for (shard, ats) in &shard_rows {
                let last = ats.last().copied().unwrap_or(0.0);
                sum += last;
                lasts.push((*shard, last, ats.len()));
            }
            let mean = sum / lasts.len() as f64;
            if mean > 0.0 {
                let rule = ThresholdRule::above("straggler", cfg.straggler_ratio);
                for &(shard, last, rounds) in &lasts {
                    let score = last / mean;
                    if let Some(sig) = rule.check(
                        score,
                        format!("shard{shard}"),
                        rounds.saturating_sub(1) as u64,
                        format!(
                            "shard {shard} finished round {} at {last:.3}s, {score:.2}x the {mean:.3}s mean",
                            rounds.saturating_sub(1)
                        ),
                    ) {
                        signals.push(sig);
                    }
                }
            }
            let mut max_rounds = 0usize;
            for (_, ats) in &shard_rows {
                max_rounds = max_rounds.max(ats.len());
            }
            for r in 0..max_rounds {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut n = 0u32;
                for (_, ats) in &shard_rows {
                    if let Some(&v) = ats.get(r) {
                        lo = lo.min(v);
                        hi = hi.max(v);
                        n += 1;
                    }
                }
                if n >= 2 {
                    let lag = hi - lo;
                    let rule = ThresholdRule::above("watermark-lag", cfg.watermark_lag_secs);
                    if let Some(sig) = rule.check(
                        lag,
                        format!("round{r}"),
                        r as u64,
                        format!("round {r} watermark spread is {lag:.3}s across {n} shards"),
                    ) {
                        signals.push(sig);
                    }
                }
            }
        }

        sort_signals(&mut signals);
        HealthReport {
            signals,
            hot_slot,
            moved_slots,
        }
    }

    /// True when the hottest slot is one the rebalance actually moved — the
    /// fact the Zipf scenario's report must state.
    pub fn hot_slot_moved(&self) -> bool {
        match self.hot_slot {
            Some(j) => self.moved_slots.contains(&j),
            None => false,
        }
    }

    /// Serializes the report as deterministic JSONL: one line per tripped
    /// signal plus a trailing summary line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.signals {
            out.push_str("{\"type\":\"health\",\"kind\":");
            write_str(&s.kind, &mut out);
            out.push_str(",\"subject\":");
            write_str(&s.subject, &mut out);
            out.push_str(&format!(
                ",\"round\":{},\"value\":{},\"threshold\":{}",
                s.round,
                fmt_f64(s.value),
                fmt_f64(s.threshold)
            ));
            out.push_str(",\"detail\":");
            write_str(&s.detail, &mut out);
            out.push_str("}\n");
        }
        out.push_str("{\"type\":\"health\",\"kind\":\"summary\",\"subject\":");
        let hot = match self.hot_slot {
            Some(j) => format!("slot{j}"),
            None => String::from("none"),
        };
        write_str(&hot, &mut out);
        out.push_str(&format!(
            ",\"round\":0,\"value\":{},\"threshold\":0",
            self.signals.len()
        ));
        let mut moved = String::from("moved slots: [");
        for (i, m) in self.moved_slots.iter().enumerate() {
            if i > 0 {
                moved.push(',');
            }
            moved.push_str(&m.to_string());
        }
        moved.push(']');
        out.push_str(",\"detail\":");
        write_str(&moved, &mut out);
        out.push_str("}\n");
        out
    }

    /// Renders a deterministic text report for `sbx report --health`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster health: {} signal(s) tripped\n",
            self.signals.len()
        ));
        if self.signals.is_empty() {
            out.push_str("  all detectors silent (balanced cluster)\n");
        }
        for s in &self.signals {
            out.push_str(&format!(
                "  {:<16} {:<12} value {:>9.3} > {:>7.3}  {}\n",
                s.kind, s.subject, s.value, s.threshold, s.detail
            ));
        }
        if let Some(j) = self.hot_slot {
            let moved = if self.moved_slots.contains(&j) {
                "moved by rebalance"
            } else {
                "not moved by rebalance"
            };
            out.push_str(&format!("  hot slot: {j} ({moved})\n"));
        }
        if !self.moved_slots.is_empty() {
            let mut list = String::new();
            for (i, m) in self.moved_slots.iter().enumerate() {
                if i > 0 {
                    list.push_str(", ");
                }
                list.push_str(&m.to_string());
            }
            out.push_str(&format!("  rebalance moved slots: {list}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn rec(id: u64, parent: Option<u64>, start: u64, dur: u64) -> SpanRec {
        SpanRec {
            id,
            parent,
            name: format!("op{id}"),
            cat: "task".to_owned(),
            lane: 0,
            round: 0,
            epoch: 0,
            start_ns: start,
            dur_ns: dur,
            records_in: 1,
            records_out: 1,
        }
    }

    fn two_shard_trace() -> ClusterTrace {
        let streams = vec![
            SpanStream {
                shard: 0,
                slot_epoch: 0,
                spans: vec![rec(0, None, 0, 100), rec(1, Some(0), 100, 50)],
            },
            SpanStream {
                shard: 1,
                slot_epoch: 0,
                spans: vec![rec(0, None, 0, 300)],
            },
            SpanStream {
                shard: 0,
                slot_epoch: 1,
                spans: vec![rec(0, None, 500, 80), rec(1, Some(0), 580, 10)],
            },
        ];
        let fabric = vec![
            FabricEvent {
                name: "barrier.wait".to_owned(),
                cat: "barrier".to_owned(),
                src_shard: 0,
                dst_shard: 0,
                epoch: 1,
                start_ns: 150,
                dur_ns: 150,
                bytes: 0,
            },
            FabricEvent {
                name: "link.1->0".to_owned(),
                cat: "shuffle".to_owned(),
                src_shard: 1,
                dst_shard: 0,
                epoch: 1,
                start_ns: 300,
                dur_ns: 200,
                bytes: 4096,
            },
        ];
        ClusterTrace::stitch(&streams, &fabric)
    }

    #[test]
    fn stitch_assigns_unique_ids_and_valid_edges() {
        let trace = two_shard_trace();
        let mut seen = std::collections::BTreeSet::new();
        for cs in &trace.spans {
            assert!(seen.insert(cs.span.id), "duplicate id {}", cs.span.id);
        }
        let by_id: BTreeMap<u64, &ClusterSpan> =
            trace.spans.iter().map(|cs| (cs.span.id, cs)).collect();
        for cs in &trace.spans {
            if let Some(p) = cs.span.parent {
                let parent = by_id[&p];
                assert!(parent.span.id < cs.span.id, "parent id precedes child");
                // Availability: the child starts no earlier than its parent
                // finished (spine, fabric, and cross-shard edges alike).
                assert!(
                    cs.span.start_ns >= parent.span.end_ns(),
                    "span {} starts at {} before parent {} ends at {}",
                    cs.span.id,
                    cs.span.start_ns,
                    parent.span.id,
                    parent.span.end_ns()
                );
            }
        }
        // Era-1 roots cross the shard boundary through the inbound link.
        let era1_root = trace
            .spans
            .iter()
            .find(|cs| cs.slot_epoch == 1 && cs.span.start_ns == 500)
            .unwrap();
        let link = trace
            .spans
            .iter()
            .find(|cs| cs.span.cat == "shuffle")
            .unwrap();
        assert_eq!(era1_root.span.parent, Some(link.span.id));
        assert_eq!(link.shard, FABRIC_SHARD);
    }

    #[test]
    fn critical_path_attribution_partitions_makespan() {
        let trace = two_shard_trace();
        let cp = ClusterCriticalPath::compute(&trace);
        assert_eq!(cp.makespan_ns, 590);
        assert_eq!(cp.attributed_ns(), cp.makespan_ns);
        assert!(cp.shuffle_ns > 0, "chain crosses the shuffle link");
        assert!(cp.compute_ns > 0);
        // The chain ends in era 1 on shard 0.
        let last = cp.steps.last().unwrap();
        assert_eq!((last.shard, last.slot_epoch), (0, 1));
        // Per-shard rows cover both eras plus the fabric.
        assert!(cp.per_shard.iter().any(|r| r.shard == FABRIC_SHARD));
        assert!(cp
            .per_shard
            .iter()
            .all(|r| r.critical_ns <= r.total_ns || r.shard == FABRIC_SHARD));
        let text = cp.render(5);
        assert!(text.contains("straggler-slack"));
        assert!(text.contains("fabric"));
    }

    #[test]
    fn cluster_jsonl_round_trips() {
        let trace = two_shard_trace();
        let text = trace.export_jsonl();
        let parsed = parse_cluster_spans_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), trace.spans.len());
        for (a, b) in parsed.iter().zip(trace.spans.iter()) {
            assert_eq!(a, b);
        }
        // The plain §10 parser reads the same lines (extra keys ignored).
        let plain = crate::parse_spans_jsonl(&text).unwrap();
        assert_eq!(plain.len(), trace.spans.len());
        assert!(parse_cluster_spans_jsonl("{\"type\":\"gauge\",\"name\":\"x\"}").is_err());
    }

    #[test]
    fn chrome_export_names_one_track_per_shard_plus_fabric() {
        let trace = two_shard_trace();
        let text = trace.export_chrome();
        assert!(text.contains("\"name\":\"process_name\""));
        assert!(text.contains("\"name\":\"fabric\""));
        assert!(text.contains("\"name\":\"shard 0\""));
        assert!(text.contains("\"name\":\"shard 1\""));
        assert!(text.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    fn skewed_dump() -> MetricsDump {
        let reg = MetricsRegistry::active();
        // Slot 3 is 16x the mean of the others.
        for (slot, records) in [(0u32, 10u64), (1, 10), (2, 10), (3, 400)] {
            reg.counter(&format!("cluster.slot{slot}.records"))
                .add(records);
        }
        reg.counter("cluster.rescale.moved.slot3").add(1);
        // One link holds 90% of the shuffle drain.
        reg.counter("cluster.shuffle.ns").add(1_000);
        reg.counter("cluster.link.0.1.ns").add(900);
        reg.counter("cluster.link.1.0.ns").add(100);
        // Shard 1 lags far behind shard 0.
        let s0 = reg.series("cluster.shard0.engine.engine.round", &["at_secs"]);
        s0.push(&[0.1]);
        s0.push(&[0.2]);
        let s1 = reg.series("cluster.shard1.engine.engine.round", &["at_secs"]);
        s1.push(&[0.1]);
        s1.push(&[1.4]);
        reg.snapshot()
    }

    fn balanced_dump() -> MetricsDump {
        let reg = MetricsRegistry::active();
        for slot in 0..4u32 {
            reg.counter(&format!("cluster.slot{slot}.records")).add(100);
        }
        reg.counter("cluster.shuffle.ns").add(1_000);
        reg.counter("cluster.link.0.1.ns").add(250);
        reg.counter("cluster.link.1.0.ns").add(250);
        for shard in 0..2u32 {
            let s = reg.series(
                &format!("cluster.shard{shard}.engine.engine.round"),
                &["at_secs"],
            );
            s.push(&[0.1]);
            s.push(&[0.2]);
        }
        reg.snapshot()
    }

    #[test]
    fn detectors_trip_on_skewed_fixture() {
        let report = HealthReport::compute(&skewed_dump(), &HealthConfig::default());
        let kinds: Vec<&str> = report.signals.iter().map(|s| s.kind.as_str()).collect();
        assert!(kinds.contains(&"slot-skew"));
        assert!(kinds.contains(&"link-saturation"));
        assert!(kinds.contains(&"straggler"));
        assert!(kinds.contains(&"watermark-lag"));
        assert_eq!(report.hot_slot, Some(3));
        assert_eq!(report.moved_slots, vec![3]);
        assert!(report.hot_slot_moved());
        let text = report.render();
        assert!(text.contains("hot slot: 3 (moved by rebalance)"));
        // Deterministic JSONL: recomputation is byte-identical.
        let again = HealthReport::compute(&skewed_dump(), &HealthConfig::default());
        assert_eq!(report.to_jsonl(), again.to_jsonl());
    }

    #[test]
    fn detectors_stay_silent_on_balanced_fixture() {
        let report = HealthReport::compute(&balanced_dump(), &HealthConfig::default());
        assert!(report.signals.is_empty(), "signals: {:?}", report.signals);
        assert!(!report.hot_slot_moved());
        assert!(report.render().contains("all detectors silent"));
        // The summary line still closes the JSONL.
        assert!(report.to_jsonl().contains("\"kind\":\"summary\""));
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let cp = ClusterCriticalPath::compute(&ClusterTrace::default());
        assert_eq!(cp.makespan_ns, 0);
        assert_eq!(cp.attributed_ns(), 0);
        assert!(cp.render(3).contains("no spans"));
        assert!(
            HealthReport::compute(&MetricsDump::default(), &HealthConfig::default())
                .signals
                .is_empty()
        );
    }
}

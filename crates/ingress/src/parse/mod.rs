//! Ingestion-format encoders and parsers for the Figure-11 experiment.
//!
//! Some deployments deliver encoded records that must be parsed before
//! processing. The paper measures three formats — JSON (RapidJSON),
//! Google Protocol Buffers, and plain text strings — and finds parsing
//! throughput varies by more than two orders of magnitude. These modules
//! implement real encoders/decoders for the same three formats over YSB's
//! numeric records:
//!
//! * [`json`] — a minimal flat-object JSON codec (`{"user_id":1,...}`),
//! * [`proto`] — a protobuf-compatible varint wire codec (field tags,
//!   wire type 0),
//! * [`text`] — comma-separated decimal integers with a fast `u64` parser.
//!
//! The relative ordering (text ≫ protobuf ≫ JSON) is a property of the
//! formats and survives the hardware substitution.

pub mod json;
pub mod proto;
pub mod text;

use std::error::Error;
use std::fmt;

/// Error returned when an encoded record cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub reason: &'static str,
    /// Byte offset where parsing failed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.reason)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_displays_context() {
        let e = ParseError {
            reason: "expected digit",
            offset: 7,
        };
        assert!(e.to_string().contains("byte 7"));
        assert!(e.to_string().contains("expected digit"));
    }

    /// All three codecs round-trip the same record.
    #[test]
    fn codecs_round_trip_consistently() {
        let record = [1u64, 22, 333, 4, 0, 1_700_000_000_000, u64::MAX];
        let names = [
            "user_id",
            "page_id",
            "ad_id",
            "ad_type",
            "event_type",
            "event_time",
            "ip",
        ];

        let j = json::encode(&record, &names);
        let mut out = Vec::new();
        json::parse(j.as_bytes(), &mut out).unwrap();
        assert_eq!(out, record);

        let p = proto::encode(&record);
        out.clear();
        proto::parse(&p, record.len(), &mut out).unwrap();
        assert_eq!(out, record);

        let t = text::encode(&record);
        out.clear();
        text::parse(t.as_bytes(), &mut out).unwrap();
        assert_eq!(out, record);
    }
}

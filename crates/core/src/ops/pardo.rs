//! The remaining ParDo family members of Table 1: `Sample` (non-producing,
//! executes as `Select` over KPAs) and `MapRecords` (producing, executes as
//! a reduction that emits new records to DRAM — the paper's FlatMap path).

use std::sync::Arc;

use sbx_kpa::Kpa;
use sbx_records::{Col, RecordBundle, Schema};
use sbx_simmem::AccessProfile;

use crate::ops::single;
use crate::{EngineError, Message, OpCtx, Operator, StatelessOperator, StreamData};

/// Deterministic sampling ParDo: keeps a fixed fraction of records, chosen
/// by a hash of a key column (so sampling is stable across runs and
/// bundles).
pub struct Sample {
    col: Col,
    keep_per_1024: u64,
}

impl Sample {
    /// Keeps approximately `fraction` of records (clamped to `[0, 1]`),
    /// hashing column `col`.
    pub fn new(col: Col, fraction: f64) -> Self {
        let f = fraction.clamp(0.0, 1.0);
        Sample {
            col,
            keep_per_1024: (f * 1024.0).round() as u64,
        }
    }

    fn keeps(&self, value: u64) -> bool {
        (value.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54) < self.keep_per_1024
    }
}

impl std::fmt::Debug for Sample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sample")
            .field("col", &self.col)
            .field("keep_per_1024", &self.keep_per_1024)
            .finish()
    }
}

impl Operator for Sample {
    fn name(&self) -> &'static str {
        StatelessOperator::name(self)
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        self.apply(ctx, msg)
    }
}

impl StatelessOperator for Sample {
    fn name(&self) -> &'static str {
        "Sample"
    }

    fn apply(&self, ctx: &mut OpCtx<'_>, msg: Message) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data { port, data } => {
                let out = match data {
                    StreamData::Bundle(b) => {
                        StreamData::Kpa(ctx.extract_select(&b, self.col, |v| self.keeps(v))?)
                    }
                    StreamData::Kpa(mut kpa) => {
                        if kpa.resident() != self.col {
                            ctx.charged(16, |e| kpa.key_swap(e, self.col));
                        }
                        let (_, prio) = ctx.place();
                        StreamData::Kpa(
                            ctx.charged(16, |e| kpa.select(e, prio, |v| self.keeps(v)))?,
                        )
                    }
                    StreamData::Windowed(w, mut kpa) => {
                        if kpa.resident() != self.col {
                            ctx.charged(16, |e| kpa.key_swap(e, self.col));
                        }
                        let (_, prio) = ctx.place();
                        StreamData::Windowed(
                            w,
                            ctx.charged(16, |e| kpa.select(e, prio, |v| self.keeps(v)))?,
                        )
                    }
                };
                Ok(single(Message::Data { port, data: out }))
            }
            other => Ok(single(other)),
        }
    }
}

/// The boxed row-mapping function a [`MapRecords`] operator applies: input
/// row in, zero or more output rows appended to the `Vec`.
type RowMapFn = Box<dyn Fn(&[u64], &mut Vec<u64>) + Send + Sync>;

/// A producing ParDo (`FlatMap`/`Map`): applies a function to every record
/// and emits 0..n new records per input to a fresh DRAM bundle
/// (paper §4.2: producing ParDos "perform Reduction and emit new records to
/// DRAM").
///
/// The emitted bundle is immediately re-extracted on the timestamp column
/// via the fused Extract (paper §4.3 optimization 1), so downstream
/// grouping operators receive a ready KPA.
pub struct MapRecords {
    out_schema: Arc<Schema>,
    f: RowMapFn,
}

impl MapRecords {
    /// A mapping ParDo. `f` receives each input row and appends zero or
    /// more output rows (row-major, `out_schema` arity) to its second
    /// argument.
    pub fn new(
        out_schema: Arc<Schema>,
        f: impl Fn(&[u64], &mut Vec<u64>) + Send + Sync + 'static,
    ) -> Self {
        MapRecords {
            out_schema,
            // sbx-lint: allow(raw-alloc, one-time operator construction, not per-bundle work)
            f: Box::new(f),
        }
    }
}

impl std::fmt::Debug for MapRecords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapRecords")
            .field("out_cols", &self.out_schema.ncols())
            .finish()
    }
}

impl Operator for MapRecords {
    fn name(&self) -> &'static str {
        StatelessOperator::name(self)
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        self.apply(ctx, msg)
    }
}

impl StatelessOperator for MapRecords {
    fn name(&self) -> &'static str {
        "MapRecords"
    }

    fn apply(&self, ctx: &mut OpCtx<'_>, msg: Message) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data { port, data } => {
                let mut rows: Vec<u64> = Vec::new();
                let in_rows: usize;
                let in_bytes: usize;
                match &data {
                    StreamData::Bundle(b) => {
                        in_rows = b.rows();
                        in_bytes = b.schema().record_bytes();
                        for r in 0..b.rows() {
                            (self.f)(b.row(r), &mut rows);
                        }
                    }
                    StreamData::Kpa(kpa) | StreamData::Windowed(_, kpa) => {
                        in_rows = kpa.len();
                        in_bytes = if kpa.is_empty() {
                            16
                        } else {
                            kpa.schema().record_bytes()
                        };
                        for i in 0..kpa.len() {
                            let (b, row) = kpa.deref(i);
                            (self.f)(b.row(row), &mut rows);
                        }
                    }
                }
                assert!(
                    rows.len().is_multiple_of(self.out_schema.ncols()),
                    "map fn emitted a ragged row"
                );
                // Charge: stream the input, write the output bundle.
                let out_bytes = rows.len() * 8;
                ctx.exec().charge(
                    &AccessProfile::new()
                        .seq(
                            sbx_simmem::MemKind::Dram,
                            (in_rows * in_bytes + out_bytes) as f64,
                        )
                        .cpu(in_rows as f64 * 8.0),
                );
                let env = ctx.env();
                let bundle = RecordBundle::from_rows(&env, Arc::clone(&self.out_schema), &rows)?;
                // Fused extract on the timestamp column (§4.3 opt. 1).
                let (kind, prio) = ctx.place();
                let ts_col = self.out_schema.ts_col();
                let kpa = ctx.charged(self.out_schema.record_bytes(), |e| {
                    Kpa::extract_fused(e, &bundle, ts_col, kind, prio)
                })?;
                Ok(single(Message::Data {
                    port,
                    data: StreamData::Kpa(kpa),
                }))
            }
            other => Ok(single(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DemandBalancer, EngineMode, ImpactTag};
    use sbx_simmem::{MachineConfig, MemEnv};

    fn ctx_env() -> (MemEnv, DemandBalancer) {
        (
            MemEnv::new(MachineConfig::knl().scaled(0.01)),
            DemandBalancer::new(),
        )
    }

    #[test]
    fn sample_keeps_a_stable_fraction() {
        let (env, mut bal) = ctx_env();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let rows: Vec<u64> = (0..10_000u64).flat_map(|i| [i, 0, 0]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &rows).unwrap();
        let mut op = Sample::new(Col(0), 0.25);
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Bundle(Arc::clone(&b))))
            .unwrap();
        let Message::Data {
            data: StreamData::Kpa(kpa),
            ..
        } = &out[0]
        else {
            panic!("expected kpa");
        };
        let frac = kpa.len() as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.05, "kept {frac}");
        // Deterministic: the same input samples identically.
        let out2 = op
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap();
        let Message::Data {
            data: StreamData::Kpa(kpa2),
            ..
        } = &out2[0]
        else {
            panic!("expected kpa");
        };
        assert_eq!(kpa.keys(), kpa2.keys());
    }

    #[test]
    fn sample_extremes() {
        let (env, mut bal) = ctx_env();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let rows: Vec<u64> = (0..100u64).flat_map(|i| [i, 0, 0]).collect();
        for (frac, expect) in [(0.0, 0usize), (1.0, 100)] {
            let b = RecordBundle::from_rows(&env, Schema::kvt(), &rows).unwrap();
            let mut op = Sample::new(Col(0), frac);
            let out = op
                .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
                .unwrap();
            let Message::Data { data, .. } = &out[0] else {
                panic!()
            };
            assert_eq!(data.len(), expect, "fraction {frac}");
        }
    }

    #[test]
    fn map_records_emits_transformed_rows() {
        let (env, mut bal) = ctx_env();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 10, 5, 2, 20, 6]).unwrap();
        // FlatMap: emit one row per input, doubling the value; drop key 2.
        let mut op = MapRecords::new(Schema::kvt(), |row, out| {
            if row[0] != 2 {
                out.extend_from_slice(&[row[0], row[1] * 2, row[2]]);
            }
        });
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap();
        let Message::Data {
            data: StreamData::Kpa(kpa),
            ..
        } = &out[0]
        else {
            panic!("expected kpa");
        };
        assert_eq!(kpa.len(), 1);
        assert_eq!(kpa.resident(), Col(2)); // extracted on ts
        assert_eq!(kpa.value_at(0, Col(1)), 20);
    }

    #[test]
    fn map_records_can_fan_out() {
        let (env, mut bal) = ctx_env();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[7, 1, 0]).unwrap();
        let mut op = MapRecords::new(Schema::kvt(), |row, out| {
            for i in 0..3 {
                out.extend_from_slice(&[row[0], row[1] + i, row[2]]);
            }
        });
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap();
        assert_eq!(out[0].data_len(), 3);
    }
}

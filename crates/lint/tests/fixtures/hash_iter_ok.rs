//! Fixture: ordered map — deterministic iteration, no findings.

use std::collections::BTreeMap;

pub struct GroupIndex {
    slots: BTreeMap<u64, usize>,
}

//! Baseline engines for the paper's comparison experiments.
//!
//! The paper compares StreamBox-HBM against Apache Flink 1.4 (Figure 7) and
//! qualitatively against Spark, Storm, SABER and Tersecades — all engines of
//! the *random-access row-at-a-time* class: records are deserialized and
//! pushed through per-record operator calls, and grouping state lives in
//! hash tables. We cannot ship Flink, so [`RowEngine`] implements that class
//! faithfully on the same simulated substrate:
//!
//! * per-record dispatch overhead (deserialization, operator invocation,
//!   managed-runtime costs), calibrated per machine,
//! * hash-table grouping (random access, no KPA),
//! * hardware-managed (cache-mode) hybrid memory — no explicit placement.
//!
//! Calibration comes from the paper's own observations: StreamBox-HBM shows
//! **18x** higher per-core YSB throughput than Flink on KNL, and Flink on
//! the X56 Xeon saturates 10 GbE with 32 of 56 cores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod row_engine;

pub use row_engine::{RowEngine, RowEngineConfig, RowPipeline, RowRunReport};

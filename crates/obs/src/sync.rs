//! Poison-tolerant locking.
//!
//! Observability must never take the engine down: if a panicking thread
//! poisons a mutex, later recorders simply keep using the inner value.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard even if the mutex was poisoned.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

//! `sbx-cluster`: the sharded distributed tier of the StreamBox-HBM
//! reproduction.
//!
//! A [`ShardedCluster`] runs one logical pipeline on N independent
//! per-shard engines (each with its own simulated machine, HBM/DRAM
//! tiers, and checkpoint store) behind a hash-slot key router:
//!
//! * **Routing** ([`route`]) — keys hash to one of [`DEFAULT_SLOTS`]
//!   slots; a dense slot→shard table makes route totality structural and
//!   lets rescaling move *slots*, never re-hash keys.
//! * **Lockstep sharding** ([`source`]) — every shard consumes the same
//!   logical record blocks and keeps only its owned rows, so bundle
//!   counts, watermark cadence, and barrier epochs align across shards
//!   and a coordinated epoch is an exact cut of the logical stream.
//! * **Priced fabric** ([`fabric`]) — shuffles charge simulated time over
//!   the [`sbx_ingress::LinkModel`] the cluster is configured with; no
//!   real network exists.
//! * **Keyed shuffle** ([`shuffle`]) — materialized window state from a
//!   coordinated snapshot set is repartitioned row-by-row onto a new
//!   route table.
//! * **Elastic rescaling** ([`run`]) — grow, shrink, or rebalance at a
//!   chosen epoch via the cut → shuffle → resume protocol, with
//!   exactly-once committed outputs even when crashes land inside the
//!   rescale epoch.
//!
//! Everything is deterministic: same seeds, same shard count, same fault
//! schedule → byte-identical committed outputs and metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use sbx_engine::EngineError;

pub mod fabric;
pub mod route;
pub mod run;
pub mod shuffle;
pub mod source;

pub use fabric::TrafficMatrix;
pub use route::{merge_slot_counts, RouteTable, SlotStats, DEFAULT_SLOTS};
pub use run::{
    ClusterConfig, ClusterCrash, ClusterRunReport, ElasticPlan, RescalePhase, RescaleSummary,
    Retarget, ShardSummary, ShardedCluster,
};
pub use shuffle::{redistribute, ShufflePlan};
pub use source::{KeyMap, RoutedSource};

/// Errors from cluster runs.
#[derive(Debug)]
pub enum ClusterError {
    /// A per-shard engine failed.
    Engine(EngineError),
    /// The topology, rescale plan, or snapshot set is invalid.
    Topology(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Engine(e) => write!(f, "shard engine failed: {e}"),
            ClusterError::Topology(msg) => write!(f, "invalid cluster topology: {msg}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Engine(e) => Some(e),
            ClusterError::Topology(_) => None,
        }
    }
}

impl From<EngineError> for ClusterError {
    fn from(e: EngineError) -> Self {
        ClusterError::Engine(e)
    }
}

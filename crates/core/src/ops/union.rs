use crate::ops::single;
use crate::{EngineError, Message, OpCtx, Operator, StatelessOperator};

/// Union (Table 1): merges the two input streams into one, re-tagging all
/// data onto port 0. A pure grouping operator — no records are touched, so
/// it charges nothing.
#[derive(Debug, Default)]
pub struct Union;

impl Union {
    /// A union of both input ports.
    pub fn new() -> Self {
        Union
    }
}

impl Operator for Union {
    fn name(&self) -> &'static str {
        StatelessOperator::name(self)
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        self.apply(ctx, msg)
    }
}

impl StatelessOperator for Union {
    fn name(&self) -> &'static str {
        "Union"
    }

    fn apply(&self, _ctx: &mut OpCtx<'_>, msg: Message) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data { data, .. } => Ok(single(Message::Data { port: 0, data })),
            other => Ok(single(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DemandBalancer, EngineMode, ImpactTag, StreamData};
    use sbx_records::{RecordBundle, Schema};
    use sbx_simmem::{MachineConfig, MemEnv};

    #[test]
    fn union_retargets_both_ports_to_zero() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let mut op = Union::new();
        for port in [0u8, 1] {
            let b = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 2, 3]).unwrap();
            let out = op
                .on_message(
                    &mut ctx,
                    Message::Data {
                        port,
                        data: StreamData::Bundle(b),
                    },
                )
                .unwrap();
            assert!(matches!(out[0], Message::Data { port: 0, .. }));
        }
        // No work is charged.
        assert_eq!(ctx.take_profile(), sbx_simmem::AccessProfile::new());
    }
}

//! End-to-end pipeline tests: every benchmark pipeline is run through the
//! full engine (ingestion → operators → watermark closure → egress) and
//! checked against an independently computed scalar oracle over the *same*
//! generated records.

use std::collections::HashMap;

use streambox_hbm::prelude::*;

const WINDOW: u64 = 1_000_000_000;

/// Replays the generator to obtain the exact records the engine saw.
fn generated_rows(seed: u64, keys: u64, rate: u64, vrange: u64, n: usize) -> Vec<[u64; 3]> {
    let mut src = KvSource::new(seed, keys, rate).with_value_range(vrange);
    let mut flat = Vec::new();
    src.fill(n, &mut flat);
    flat.chunks(3).map(|c| [c[0], c[1], c[2]]).collect()
}

fn run_benchmark(pipeline: Pipeline, seed: u64, keys: u64, vrange: u64) -> RunReport {
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 1_500,
            bundles_per_watermark: 4,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let source = KvSource::new(seed, keys, 60_000).with_value_range(vrange);
    Engine::new(cfg)
        .run(source, pipeline, 20)
        .expect("engine run")
}

fn outputs_as_map(report: &RunReport) -> HashMap<(u64, u64), u64> {
    let mut got = HashMap::new();
    for b in &report.outputs {
        for r in 0..b.rows() {
            let w = b.value(r, Col(2)) / WINDOW;
            let prev = got.insert((w, b.value(r, Col(0))), b.value(r, Col(1)));
            assert!(prev.is_none(), "duplicate output for window/key");
        }
    }
    got
}

#[test]
fn avg_per_key_matches_oracle() {
    let rows = generated_rows(101, 20, 60_000, 10_000, 30_000);
    let report = run_benchmark(benchmarks::avg_per_key(), 101, 20, 10_000);
    let mut sums: HashMap<(u64, u64), (u128, u64)> = HashMap::new();
    for [k, v, t] in &rows {
        let e = sums.entry((t / WINDOW, *k)).or_insert((0, 0));
        e.0 += *v as u128;
        e.1 += 1;
    }
    let expect: HashMap<(u64, u64), u64> = sums
        .into_iter()
        .map(|(k, (s, c))| (k, (s / c as u128) as u64))
        .collect();
    assert_eq!(outputs_as_map(&report), expect);
}

#[test]
fn median_per_key_matches_oracle() {
    let rows = generated_rows(102, 10, 60_000, 1_000, 30_000);
    let report = run_benchmark(benchmarks::median_per_key(), 102, 10, 1_000);
    let mut groups: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
    for [k, v, t] in &rows {
        groups.entry((t / WINDOW, *k)).or_default().push(*v);
    }
    let expect: HashMap<(u64, u64), u64> = groups
        .into_iter()
        .map(|(k, mut vs)| {
            vs.sort_unstable();
            (k, vs[(vs.len() - 1) / 2])
        })
        .collect();
    assert_eq!(outputs_as_map(&report), expect);
}

#[test]
fn unique_count_per_key_matches_oracle() {
    let rows = generated_rows(103, 10, 60_000, 50, 30_000);
    let report = run_benchmark(benchmarks::unique_count_per_key(), 103, 10, 50);
    let mut groups: HashMap<(u64, u64), std::collections::HashSet<u64>> = HashMap::new();
    for [k, v, t] in &rows {
        groups.entry((t / WINDOW, *k)).or_default().insert(*v);
    }
    let expect: HashMap<(u64, u64), u64> = groups
        .into_iter()
        .map(|(k, s)| (k, s.len() as u64))
        .collect();
    assert_eq!(outputs_as_map(&report), expect);
}

#[test]
fn topk_emits_k_largest_values_per_key() {
    let rows = generated_rows(104, 5, 60_000, 1_000_000, 30_000);
    let report = run_benchmark(benchmarks::topk_per_key(3), 104, 5, 1_000_000);
    let mut groups: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
    for [k, v, t] in &rows {
        groups.entry((t / WINDOW, *k)).or_default().push(*v);
    }
    // Collect engine outputs per (window, key).
    let mut got: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
    for b in &report.outputs {
        for r in 0..b.rows() {
            let w = b.value(r, Col(2)) / WINDOW;
            got.entry((w, b.value(r, Col(0))))
                .or_default()
                .push(b.value(r, Col(1)));
        }
    }
    for (key, mut vs) in groups {
        vs.sort_unstable_by(|a, b| b.cmp(a));
        vs.truncate(3);
        assert_eq!(got.get(&key), Some(&vs), "top-3 mismatch for {key:?}");
    }
}

#[test]
fn ysb_counts_views_per_campaign() {
    let campaigns = 20u64;
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(
            YsbSource::new(77, 500, campaigns, 100_000),
            benchmarks::ysb(campaigns),
            20,
        )
        .expect("run");

    // Oracle over the same generated records.
    let mut src = YsbSource::new(77, 500, campaigns, 100_000);
    let mut flat = Vec::new();
    src.fill(40_000, &mut flat);
    let mut expect: HashMap<(u64, u64), u64> = HashMap::new();
    for rec in flat.chunks(7) {
        if rec[3] < 2 {
            // same ad_type filter as the pipeline
            *expect
                .entry((rec[5] / WINDOW, rec[2] % campaigns))
                .or_insert(0) += 1;
        }
    }
    assert_eq!(outputs_as_map(&report), expect);
}

#[test]
fn temporal_join_pairs_matching_machines() {
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 500,
            bundles_per_watermark: 4,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let l = KvSource::new(201, 50, 20_000).with_value_range(100);
    let r = KvSource::new(202, 50, 20_000).with_value_range(100);
    let report = Engine::new(cfg)
        .run_pair(l, r, benchmarks::temporal_join(), 10)
        .expect("run");

    // Oracle: nested-loop join over the same two generated streams.
    let mk = |seed: u64| {
        let mut s = KvSource::new(seed, 50, 20_000).with_value_range(100);
        let mut f = Vec::new();
        s.fill(10 * 500, &mut f);
        f.chunks(3).map(|c| [c[0], c[1], c[2]]).collect::<Vec<_>>()
    };
    let (lrows, rrows) = (mk(201), mk(202));
    let mut expect = 0u64;
    for [lk, _, lt] in &lrows {
        for [rk, _, rt] in &rrows {
            if lk == rk && lt / WINDOW == rt / WINDOW {
                expect += 1;
            }
        }
    }
    assert_eq!(report.output_records, expect);
}

#[test]
fn power_grid_runs_and_emits_winning_houses() {
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let houses = 20u64;
    let report = Engine::new(cfg)
        .run(
            PowerGridSource::new(301, houses, 10, 50_000),
            benchmarks::power_grid(),
            20,
        )
        .expect("run");
    assert!(report.windows_closed > 0);
    assert!(report.output_records > 0);
    for b in &report.outputs {
        for r in 0..b.rows() {
            assert!(b.value(r, Col(0)) < houses, "winner must be a real house");
            assert!(b.value(r, Col(1)) >= 1, "winner has at least one hot plug");
        }
    }
}

#[test]
fn windowed_filter_keeps_above_average_records() {
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 1_000,
            bundles_per_watermark: 4,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let data = KvSource::new(401, 100, 40_000).with_value_range(1_000);
    let control = KvSource::new(402, 100, 40_000).with_value_range(1_000);
    let report = Engine::new(cfg)
        .run_pair(data, control, benchmarks::windowed_filter(), 10)
        .expect("run");

    // Oracle: per window, control average; count data records above it.
    let mk = |seed: u64| {
        let mut s = KvSource::new(seed, 100, 40_000).with_value_range(1_000);
        let mut f = Vec::new();
        s.fill(10 * 1_000, &mut f);
        f.chunks(3).map(|c| [c[0], c[1], c[2]]).collect::<Vec<_>>()
    };
    let (drows, crows) = (mk(401), mk(402));
    let mut csum: HashMap<u64, (u128, u64)> = HashMap::new();
    for [_, v, t] in &crows {
        let e = csum.entry(t / WINDOW).or_insert((0, 0));
        e.0 += *v as u128;
        e.1 += 1;
    }
    let mut expect = 0u64;
    for [_, v, t] in &drows {
        let w = t / WINDOW;
        let avg = csum.get(&w).map_or(0, |(s, c)| (s / *c as u128) as u64);
        if *v > avg {
            expect += 1;
        }
    }
    assert_eq!(report.output_records, expect);
}

#[test]
fn sliding_windows_count_each_record_in_every_window() {
    // 1-second windows sliding by 0.5 s: each record lands in 2 windows.
    let spec = WindowSpec::sliding(WINDOW, WINDOW / 2);
    let pipeline = PipelineBuilder::new(spec)
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::Count)
        .build();
    let cfg = RunConfig {
        cores: 8,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 1_000,
            bundles_per_watermark: 4,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(KvSource::new(55, 1, 20_000), pipeline, 12)
        .expect("run");
    let total: u64 = report
        .outputs
        .iter()
        .flat_map(|b| (0..b.rows()).map(move |r| b.value(r, Col(1))))
        .sum();
    // A record at ts lies in min(overlap, ts/slide + 1) windows (early
    // records are covered by fewer windows).
    let mut src = KvSource::new(55, 1, 20_000);
    let mut flat = Vec::new();
    src.fill(report.records_in as usize, &mut flat);
    let expect: u64 = flat
        .chunks(3)
        .map(|r| (r[2] / (WINDOW / 2) + 1).min(2))
        .sum();
    assert_eq!(total, expect, "window multiplicity must match the spec");
}

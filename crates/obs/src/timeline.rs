//! Memory-tier timelines reconstructed from the metrics registry.
//!
//! The engine records one [`TIER_SERIES`] row per watermark round: HBM and
//! DRAM occupancy (live versus freelist-cached bytes), bandwidth
//! utilisation against the machine spec, and the round's spill and
//! knob-move activity. This module turns that series (live or re-parsed
//! from a metrics JSONL export) into an aligned [`Timeline`] with its own
//! JSONL export and a deterministic text rendering — the `sbx report
//! --timeline` view.
//!
//! Every value originates from simulated time or accounted byte counters,
//! so a timeline is byte-identical across same-seed runs.

// sbx-lint: out-of-scope(raw-alloc, timeline rendering at export time)
use crate::json::fmt_f64;
use crate::metrics::{MetricsDump, MetricsRegistry, SeriesDump};

/// Name of the per-round memory-tier series.
pub const TIER_SERIES: &str = "engine.tier";

/// Field names of [`TIER_SERIES`], in row order.
///
/// - `at_secs` — simulated time of the round boundary;
/// - `*_live_bytes` — bytes in live allocations (used minus freelist cache);
/// - `*_used_bytes` — accounted bytes including freelist-cached slabs;
/// - `*_occupancy` — used bytes over pool capacity, 0..=1;
/// - `*_bw_util` — the round's bandwidth over the machine spec, 0..=1;
/// - `spills` / `knob_moves` — events within the round (deltas, not
///   cumulative);
/// - `k_low` / `k_high` — balancer knob positions at the round boundary.
pub const TIER_FIELDS: [&str; 13] = [
    "at_secs",
    "hbm_live_bytes",
    "hbm_used_bytes",
    "hbm_occupancy",
    "dram_live_bytes",
    "dram_used_bytes",
    "dram_occupancy",
    "hbm_bw_util",
    "dram_bw_util",
    "spills",
    "knob_moves",
    "k_low",
    "k_high",
];

/// One round boundary on the memory-tier timeline. Field meanings match
/// [`TIER_FIELDS`].
#[derive(Debug, Clone, PartialEq)]
pub struct TierPoint {
    /// Simulated time of the round boundary, seconds.
    pub at_secs: f64,
    /// HBM bytes in live allocations.
    pub hbm_live_bytes: f64,
    /// HBM accounted bytes (live plus freelist-cached).
    pub hbm_used_bytes: f64,
    /// HBM used bytes over capacity, 0..=1.
    pub hbm_occupancy: f64,
    /// DRAM bytes in live allocations.
    pub dram_live_bytes: f64,
    /// DRAM accounted bytes (live plus freelist-cached).
    pub dram_used_bytes: f64,
    /// DRAM used bytes over capacity, 0..=1.
    pub dram_occupancy: f64,
    /// HBM bandwidth this round over the machine spec, 0..=1.
    pub hbm_bw_util: f64,
    /// DRAM bandwidth this round over the machine spec, 0..=1.
    pub dram_bw_util: f64,
    /// HBM→DRAM spills within the round.
    pub spills: f64,
    /// Balancer knob moves within the round.
    pub knob_moves: f64,
    /// Balancer low-watermark knob position at the boundary.
    pub k_low: f64,
    /// Balancer high-watermark knob position at the boundary.
    pub k_high: f64,
}

impl TierPoint {
    fn from_row(row: &[f64], idx: &[usize; 13]) -> TierPoint {
        let get = |i: usize| row.get(idx[i]).copied().unwrap_or(0.0);
        TierPoint {
            at_secs: get(0),
            hbm_live_bytes: get(1),
            hbm_used_bytes: get(2),
            hbm_occupancy: get(3),
            dram_live_bytes: get(4),
            dram_used_bytes: get(5),
            dram_occupancy: get(6),
            hbm_bw_util: get(7),
            dram_bw_util: get(8),
            spills: get(9),
            knob_moves: get(10),
            k_low: get(11),
            k_high: get(12),
        }
    }
}

/// A per-round memory-tier timeline (see [`TIER_SERIES`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// One point per watermark round, in round order.
    pub points: Vec<TierPoint>,
}

impl Timeline {
    /// Reconstructs the timeline from one exported series (typically the
    /// [`TIER_SERIES`] dump, whole or a `series_window` suffix).
    pub fn from_series(series: &SeriesDump) -> Timeline {
        let mut idx = [usize::MAX; 13];
        for (slot, field) in idx.iter_mut().zip(TIER_FIELDS.iter()) {
            match series.field_index(field) {
                Some(i) => *slot = i,
                // A dump from a different schema version: treat missing
                // fields as zero rather than misaligning the rest.
                None => *slot = usize::MAX,
            }
        }
        Timeline {
            points: series
                .rows
                .iter()
                .map(|row| TierPoint::from_row(row, &idx))
                .collect(),
        }
    }

    /// Reconstructs the timeline from a metrics dump (live snapshot or
    /// re-parsed JSONL export). Returns an empty timeline when the dump has
    /// no [`TIER_SERIES`] rows (e.g. a run recorded without observability).
    pub fn from_dump(dump: &MetricsDump) -> Timeline {
        match dump.series(TIER_SERIES) {
            Some(series) => Timeline::from_series(series),
            None => Timeline::default(),
        }
    }

    /// Reconstructs the last `last_n` rounds straight from a live registry
    /// via [`MetricsRegistry::series_window`] — the incident capture path,
    /// which must not clone the whole run's history at each fire.
    pub fn from_registry_window(reg: &MetricsRegistry, last_n: usize) -> Timeline {
        match reg.series_window(TIER_SERIES, last_n) {
            Some(series) => Timeline::from_series(&series),
            None => Timeline::default(),
        }
    }

    /// True if no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total spills across the run.
    pub fn total_spills(&self) -> u64 {
        self.points.iter().map(|p| p.spills as u64).sum()
    }

    /// Total knob moves across the run.
    pub fn total_knob_moves(&self) -> u64 {
        self.points.iter().map(|p| p.knob_moves as u64).sum()
    }

    /// Peak HBM occupancy across the run, 0..=1.
    pub fn peak_hbm_occupancy(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.hbm_occupancy)
            .fold(0.0, f64::max)
    }

    /// Exports the timeline as JSONL, one flat `{"type":"tier",...}` object
    /// per round, fields in [`TIER_FIELDS`] order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            let values = [
                p.at_secs,
                p.hbm_live_bytes,
                p.hbm_used_bytes,
                p.hbm_occupancy,
                p.dram_live_bytes,
                p.dram_used_bytes,
                p.dram_occupancy,
                p.hbm_bw_util,
                p.dram_bw_util,
                p.spills,
                p.knob_moves,
                p.k_low,
                p.k_high,
            ];
            out.push_str("{\"type\":\"tier\"");
            for (field, value) in TIER_FIELDS.iter().zip(values.iter()) {
                out.push_str(&format!(",\"{field}\":{}", fmt_f64(*value)));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders a deterministic text view: one line per round with ASCII
    /// occupancy/bandwidth bars plus spill and knob annotations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("memory-tier timeline: no rounds recorded\n");
            return out;
        }
        out.push_str(&format!(
            "memory-tier timeline: {} rounds, peak HBM occupancy {:.1}%, {} spills, {} knob moves\n",
            self.points.len(),
            100.0 * self.peak_hbm_occupancy(),
            self.total_spills(),
            self.total_knob_moves(),
        ));
        out.push_str(
            "  round    t(s)  HBM occ [bar]        live MiB  bw%   DRAM occ  bw%   events\n",
        );
        for (round, p) in self.points.iter().enumerate() {
            let mut events = String::new();
            if p.spills > 0.0 {
                events.push_str(&format!(" spills={}", p.spills as u64));
            }
            if p.knob_moves > 0.0 {
                events.push_str(&format!(
                    " knobs={} (k_low={} k_high={})",
                    p.knob_moves as u64, p.k_low as u64, p.k_high as u64
                ));
            }
            out.push_str(&format!(
                "  {:>5} {:>7.3}  {:>6.1}% [{}] {:>9.2}  {:>4.1}  {:>7.1}% {:>5.1} {}\n",
                round,
                p.at_secs,
                100.0 * p.hbm_occupancy,
                bar(p.hbm_occupancy, 10),
                p.hbm_live_bytes / (1024.0 * 1024.0),
                100.0 * p.hbm_bw_util,
                100.0 * p.dram_occupancy,
                100.0 * p.dram_bw_util,
                events,
            ));
        }
        out
    }
}

/// A `width`-character ASCII bar filled proportionally to `frac` (0..=1).
fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0) * width as f64).round() as usize).min(width);
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::active();
        let series = reg.series(TIER_SERIES, &TIER_FIELDS);
        series.push(&[
            1.0, 1000.0, 2000.0, 0.25, 500.0, 800.0, 0.1, 0.5, 0.2, 0.0, 0.0, 2.0, 6.0,
        ]);
        series.push(&[
            2.0, 3000.0, 4000.0, 0.5, 600.0, 900.0, 0.2, 0.9, 0.4, 3.0, 1.0, 1.0, 6.0,
        ]);
        reg
    }

    #[test]
    fn reconstructs_points_from_dump() {
        let tl = Timeline::from_dump(&sample_registry().snapshot());
        assert_eq!(tl.points.len(), 2);
        assert_eq!(tl.points[0].at_secs, 1.0);
        assert_eq!(tl.points[1].hbm_occupancy, 0.5);
        assert_eq!(tl.total_spills(), 3);
        assert_eq!(tl.total_knob_moves(), 1);
        assert_eq!(tl.peak_hbm_occupancy(), 0.5);
    }

    #[test]
    fn survives_a_jsonl_round_trip() {
        let dump = sample_registry().snapshot();
        let reparsed = MetricsDump::parse_jsonl(&dump.to_jsonl()).unwrap();
        assert_eq!(Timeline::from_dump(&dump), Timeline::from_dump(&reparsed));
    }

    #[test]
    fn jsonl_lines_are_flat_tier_objects() {
        let tl = Timeline::from_dump(&sample_registry().snapshot());
        let text = tl.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let pairs = crate::json::parse_flat_object(lines[1]).unwrap();
        let get = |k: &str| {
            pairs
                .iter()
                .find(|(key, _)| key == k)
                .and_then(|(_, v)| v.as_f64())
        };
        assert_eq!(get("at_secs"), Some(2.0));
        assert_eq!(get("spills"), Some(3.0));
        assert_eq!(get("k_high"), Some(6.0));
    }

    #[test]
    fn render_is_deterministic_and_annotated() {
        let tl = Timeline::from_dump(&sample_registry().snapshot());
        let a = tl.render();
        let b = tl.render();
        assert_eq!(a, b);
        assert!(a.contains("2 rounds"));
        assert!(a.contains("spills=3"));
        assert!(a.contains("knobs=1"));
        assert!(a.contains('#'));
    }

    #[test]
    fn registry_window_reads_bounded_suffix() {
        let reg = sample_registry();
        let tl = Timeline::from_registry_window(&reg, 1);
        assert_eq!(tl.points.len(), 1);
        assert_eq!(tl.points[0].at_secs, 2.0);
        assert_eq!(Timeline::from_registry_window(&reg, 10).points.len(), 2);
        assert!(Timeline::from_registry_window(&MetricsRegistry::noop(), 4).is_empty());
        assert!(reg.series_window("not-there", 4).is_none());
    }

    #[test]
    fn empty_dump_yields_empty_timeline() {
        let tl = Timeline::from_dump(&MetricsDump::default());
        assert!(tl.is_empty());
        assert!(tl.render().contains("no rounds"));
        assert!(tl.to_jsonl().is_empty());
    }

    #[test]
    fn bar_clamps_and_fills() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 4), "####");
    }
}

//! Deterministic cardinality/skew sketch for the adaptive GroupBy.
//!
//! The adaptive grouping operator (DESIGN.md §14) needs two facts about a
//! window's key column before choosing sort-merge or hashing: roughly how
//! many distinct keys there are, and whether the distribution is dominated
//! by a few heavy hitters (heavy keys keep their table slots cache-resident
//! even when the nominal cardinality is large). Both estimates must be
//! *deterministic* — same keys, same answer, regardless of thread count or
//! platform — because backend decisions feed the bit-stability guarantee.
//!
//! [`GroupSketch`] therefore combines two classic streaming summaries with
//! zero heap allocation and no randomness beyond the Fibonacci hash that
//! the grouping table already uses ([`crate::hash::fib_hash`], the same
//! splitmix/fib constant `sbx-prng` seeds with):
//!
//! - **Linear counting** over a fixed 65 536-bit bitmap: every key sets the
//!   bit addressed by its hash's top 16 bits; the distinct-count estimate
//!   is `m · ln(m / zeros)` (Whang et al.), exact in expectation up to
//!   tens of thousands of distinct keys and saturating — deliberately —
//!   toward "many" beyond that, which is exactly the regime where the
//!   decision no longer needs precision.
//! - **Misra–Gries** with 8 counters for the heavy-hitter mass, from which
//!   [`GroupSketch::heavy_permille`] bounds the fraction of the stream
//!   owned by the single hottest key.
//!
//! Integer-only state; the sole floating-point step (`ln`) happens in the
//! estimator and is pinned by known-answer tests below.

use crate::hash::fib_hash;

const BITMAP_BITS: usize = 1 << 16;
const BITMAP_WORDS: usize = BITMAP_BITS / 64;
const HH_SLOTS: usize = 8;

/// A fixed-size, allocation-free cardinality + skew sketch.
///
/// # Example
///
/// ```
/// use sbx_kpa::sketch::GroupSketch;
///
/// let mut sk = GroupSketch::new();
/// for k in 0..1000u64 {
///     sk.observe(if k % 2 == 0 { 7 } else { k }); // key 7 owns half the stream
/// }
/// assert_eq!(sk.distinct_estimate(), 502); // 501 distinct, within the sketch's resolution
/// assert!(sk.heavy_permille() >= 400);
/// ```
#[derive(Clone)]
pub struct GroupSketch {
    bits: [u64; BITMAP_WORDS],
    ones: u32,
    total: u64,
    hh_keys: [u64; HH_SLOTS],
    hh_counts: [u64; HH_SLOTS],
}

impl Default for GroupSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for GroupSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupSketch")
            .field("total", &self.total)
            .field("distinct_estimate", &self.distinct_estimate())
            .field("heavy_permille", &self.heavy_permille())
            .finish()
    }
}

impl GroupSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        GroupSketch {
            bits: [0; BITMAP_WORDS],
            ones: 0,
            total: 0,
            hh_keys: [0; HH_SLOTS],
            hh_counts: [0; HH_SLOTS],
        }
    }

    /// Records one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        self.total += 1;
        let idx = (fib_hash(key) >> 48) as usize; // top 16 bits
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        if self.bits[word] & bit == 0 {
            self.bits[word] |= bit;
            self.ones += 1;
        }
        // Misra–Gries update: deterministic linear scan of the fixed slots.
        for i in 0..HH_SLOTS {
            if self.hh_counts[i] > 0 && self.hh_keys[i] == key {
                self.hh_counts[i] += 1;
                return;
            }
        }
        for i in 0..HH_SLOTS {
            if self.hh_counts[i] == 0 {
                self.hh_keys[i] = key;
                self.hh_counts[i] = 1;
                return;
            }
        }
        for c in self.hh_counts.iter_mut() {
            *c -= 1;
        }
    }

    /// Records every key in `keys`.
    pub fn observe_all(&mut self, keys: &[u64]) {
        for &k in keys {
            self.observe(k);
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Linear-counting estimate of the number of distinct keys observed.
    ///
    /// Never exceeds [`GroupSketch::total`]; when the bitmap saturates
    /// completely the estimate falls back to `total` (i.e. "assume all
    /// distinct" — the conservative answer for the sort-vs-hash decision).
    pub fn distinct_estimate(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let m = BITMAP_BITS as f64;
        let zeros = (BITMAP_BITS as u32 - self.ones) as f64;
        if zeros < 1.0 {
            return self.total;
        }
        let est = (m * (m / zeros).ln() + 0.5) as u64;
        est.min(self.total)
    }

    /// Lower bound, in per-mille of the stream, on the share owned by the
    /// single most frequent key (Misra–Gries guarantees the residual count
    /// of a true heavy hitter survives the decrements).
    pub fn heavy_permille(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let top = self.hh_counts.iter().copied().max().unwrap_or(0);
        top.saturating_mul(1000) / self.total
    }

    /// Folds another sketch into this one (bitmap union, counter merge).
    /// The merged Misra–Gries state keeps the pointwise maximum residual
    /// per key slot — still a valid lower bound on the true top count.
    pub fn merge(&mut self, other: &GroupSketch) {
        let mut ones = 0u32;
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
            ones += a.count_ones();
        }
        self.ones = ones;
        self.total += other.total;
        for i in 0..HH_SLOTS {
            if other.hh_counts[i] == 0 {
                continue;
            }
            let key = other.hh_keys[i];
            let add = other.hh_counts[i];
            let mut placed = false;
            for j in 0..HH_SLOTS {
                if self.hh_counts[j] > 0 && self.hh_keys[j] == key {
                    self.hh_counts[j] += add;
                    placed = true;
                    break;
                }
            }
            if !placed {
                for j in 0..HH_SLOTS {
                    if self.hh_counts[j] == 0 {
                        self.hh_keys[j] = key;
                        self.hh_counts[j] = add;
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                for c in self.hh_counts.iter_mut() {
                    *c = c.saturating_sub(add);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use sbx_prng::SbxRng;

    use super::*;

    #[test]
    fn empty_sketch_is_zero() {
        let sk = GroupSketch::new();
        assert_eq!(sk.distinct_estimate(), 0);
        assert_eq!(sk.heavy_permille(), 0);
        assert_eq!(sk.total(), 0);
    }

    #[test]
    fn small_cardinalities_are_exact() {
        for card in [1u64, 10, 100] {
            let mut sk = GroupSketch::new();
            for i in 0..10_000u64 {
                sk.observe(i % card);
            }
            assert_eq!(sk.distinct_estimate(), card, "cardinality {card}");
        }
        // Past a few hundred keys the linear-counting collision correction
        // carries a small positive bias for structured (low-discrepancy)
        // key domains; it must stay within 2%.
        let mut sk = GroupSketch::new();
        for i in 0..10_000u64 {
            sk.observe(i % 1000);
        }
        let est = sk.distinct_estimate();
        assert!((1000..=1020).contains(&est), "estimate {est}");
    }

    /// Known-answer estimates for seeded uniform streams. These pin the
    /// exact u64 output of the estimator per seed — any change to the hash,
    /// the bitmap size or the estimator arithmetic shows up here.
    #[test]
    fn pinned_estimates_per_seed() {
        let cases: [(u64, u64, u64, u64); 3] = [
            // (seed, domain, draws, pinned estimate)
            (1, 1 << 10, 50_000, 1_032),
            (7, 1 << 14, 50_000, 17_797),
            (42, 1 << 20, 50_000, 50_000), // capped at total: ~all draws distinct
        ];
        let mut got = Vec::new();
        for (seed, domain, draws, _) in cases {
            let mut rng = SbxRng::seed_from_u64(seed);
            let mut sk = GroupSketch::new();
            for _ in 0..draws {
                sk.observe(rng.random_range(0..domain));
            }
            got.push(sk.distinct_estimate());
        }
        let want: Vec<u64> = cases.iter().map(|c| c.3).collect();
        assert_eq!(got, want, "pinned estimates moved");
    }

    /// Fibonacci hashing of structured key domains is low-discrepancy, so
    /// the bitmap sees fewer collisions than the linear-counting model
    /// assumes and the correction overshoots slightly. A ~10% ceiling is
    /// ample for the decision: the sort/hash regimes are decades of
    /// cardinality apart.
    #[test]
    fn estimate_tracks_true_cardinality_within_ten_percent() {
        let mut rng = SbxRng::seed_from_u64(9);
        let mut sk = GroupSketch::new();
        let domain = 8192u64;
        let mut seen = vec![false; domain as usize];
        for _ in 0..60_000 {
            let k = rng.random_range(0..domain);
            seen[k as usize] = true;
            sk.observe(k);
        }
        let truth = seen.iter().filter(|&&s| s).count() as f64;
        let est = sk.distinct_estimate() as f64;
        assert!(
            (est - truth).abs() / truth < 0.10,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn saturated_bitmap_falls_back_to_total() {
        let mut sk = GroupSketch::new();
        for k in 0..2_000_000u64 {
            sk.observe(k);
        }
        // Far past saturation the estimate must stay large (>= the linear
        // counting range) and never exceed the observation count.
        assert!(sk.distinct_estimate() > 400_000);
        assert!(sk.distinct_estimate() <= sk.total());
    }

    #[test]
    fn heavy_hitter_share_is_a_lower_bound() {
        let mut rng = SbxRng::seed_from_u64(3);
        let mut sk = GroupSketch::new();
        // 50% of the stream is key 7, the rest uniform over 1k keys.
        let mut true_top = 0u64;
        for _ in 0..40_000 {
            if rng.random_f64() < 0.5 {
                sk.observe(7);
                true_top += 1;
            } else {
                sk.observe(1000 + rng.random_range(0..1000));
            }
        }
        let bound = sk.heavy_permille();
        let truth = true_top * 1000 / sk.total();
        assert!(
            bound > 0 && bound <= truth + 1,
            "bound {bound} truth {truth}"
        );
        assert!(bound >= truth / 2, "bound {bound} too weak vs {truth}");
    }

    #[test]
    fn uniform_stream_has_no_heavy_hitter() {
        let mut sk = GroupSketch::new();
        for i in 0..100_000u64 {
            sk.observe(i);
        }
        assert!(sk.heavy_permille() <= 1);
    }

    #[test]
    fn merge_matches_single_pass() {
        let mut rng = SbxRng::seed_from_u64(11);
        let mut whole = GroupSketch::new();
        let mut left = GroupSketch::new();
        let mut right = GroupSketch::new();
        for i in 0..30_000u64 {
            let k = rng.random_range(0..4096);
            whole.observe(k);
            if i % 2 == 0 {
                left.observe(k);
            } else {
                right.observe(k);
            }
        }
        left.merge(&right);
        assert_eq!(left.distinct_estimate(), whole.distinct_estimate());
        assert_eq!(left.total(), whole.total());
    }

    #[test]
    fn determinism_across_construction_order() {
        let keys: Vec<u64> = (0..5000).map(|i| (i * 37) % 512).collect();
        let mut a = GroupSketch::new();
        let mut b = GroupSketch::new();
        a.observe_all(&keys);
        for &k in &keys {
            b.observe(k);
        }
        assert_eq!(a.distinct_estimate(), b.distinct_estimate());
        assert_eq!(a.heavy_permille(), b.heavy_permille());
    }
}

//! Fixture: simulated-clock engine code, plus one justified host-timing
//! site of the kind the bench harness uses.

use std::time::Instant; // sbx-lint: allow(wall-clock, host microbenchmark harness)

pub fn step(env: &MemEnv) -> u64 {
    env.monitor().now_ns()
}

pub fn host_time(f: impl FnOnce()) -> f64 {
    // sbx-lint: allow(wall-clock, host microbenchmark harness)
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

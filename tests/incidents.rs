//! Incident-pipeline tests (DESIGN.md §15): each manufactured failure
//! scenario fires exactly the detector built for it, clean runs file
//! nothing, and the exported `incidents.jsonl` artifacts are
//! byte-identical across repeats and host thread counts — every value
//! the flight recorder samples is simulated-time.

use std::sync::Arc;

use streambox_hbm::prelude::*;
use streambox_hbm::records::EventTime as Et;

/// The memory-lifecycle spill recipe: HBM shrunk to 256 KiB so KPA
/// allocations storm into DRAM while the run still succeeds.
fn spill_cfg(threads: usize, obs: Obs) -> RunConfig {
    let mut machine = MachineConfig::knl().scaled(1.0 / 256.0);
    machine.hbm.capacity_bytes = 256 * 1024;
    RunConfig {
        machine,
        cores: 16,
        threads,
        sender: SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        obs,
        ..RunConfig::default()
    }
}

fn spill_run(threads: usize) -> Obs {
    let obs = Obs::metrics_only();
    Engine::new(spill_cfg(threads, obs.clone()))
        .run(
            KvSource::new(3, 1_000, 100_000).with_value_range(100),
            benchmarks::sum_per_key(),
            40,
        )
        .expect("spill run must survive HBM exhaustion");
    obs
}

fn kinds(incidents: &[Incident]) -> Vec<String> {
    incidents.iter().map(|i| i.verdict.kind.clone()).collect()
}

/// Scenario: spill storm. Tiny HBM makes every round fall back
/// HBM→DRAM; the CUSUM detector must fire, and no other detector may
/// co-fire on the same run.
#[test]
fn tiny_hbm_fires_only_the_spill_storm_detector() {
    let obs = spill_run(2);
    let incidents = obs.recorder.incidents();
    assert!(
        !incidents.is_empty(),
        "tiny HBM must trip the spill-storm detector"
    );
    for i in &incidents {
        assert_eq!(
            i.verdict.kind, "spill-storm",
            "unexpected co-firing detector: {:?}",
            i.verdict
        );
        assert!(
            i.verdict.detail.contains("HBM->DRAM"),
            "detail names the spill direction: {}",
            i.verdict.detail
        );
        // The capture window froze real evidence at the verdict round.
        assert!(!i.rounds.is_empty(), "frozen round window");
        assert!(i.rounds.iter().any(|p| p.spills > 0.0));
        assert_eq!(i.rounds.last().map(|p| p.round), Some(i.verdict.round));
        // Metrics were on, so the tier-timeline slice rode along.
        assert!(!i.tier.is_empty(), "tier-timeline evidence");
    }
}

/// A source that freezes its watermark promise after `stall_after`
/// bundles while records keep flowing — the late-data-flood shape.
#[derive(Debug)]
struct StallSource {
    inner: KvSource,
    bundles: u64,
    stall_after: u64,
    frozen: Option<Et>,
}

impl StallSource {
    fn new(seed: u64, stall_after: u64) -> Self {
        StallSource {
            inner: KvSource::new(seed, 500, 1_000_000).with_value_range(1_000),
            bundles: 0,
            stall_after,
            frozen: None,
        }
    }
}

impl Source for StallSource {
    fn schema(&self) -> Arc<Schema> {
        self.inner.schema()
    }

    fn fill(&mut self, rows: usize, out: &mut Vec<u64>) {
        self.inner.fill(rows, out);
        self.bundles += 1;
        if self.bundles >= self.stall_after && self.frozen.is_none() {
            self.frozen = Some(self.inner.low_watermark());
        }
    }

    fn low_watermark(&self) -> Et {
        self.frozen.unwrap_or_else(|| self.inner.low_watermark())
    }
}

/// Scenario: watermark stall. After the freeze no window can close
/// while records keep arriving; only the stall detector may fire.
#[test]
fn frozen_watermark_fires_only_the_stall_detector() {
    let obs = Obs::metrics_only();
    let cfg = RunConfig {
        cores: 16,
        sender: SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        obs: obs.clone(),
        ..RunConfig::default()
    };
    Engine::new(cfg)
        .run(StallSource::new(7, 20), benchmarks::sum_per_key(), 60)
        .expect("stalled run still completes");
    let incidents = obs.recorder.incidents();
    assert!(
        !incidents.is_empty(),
        "a frozen watermark must trip the stall detector"
    );
    for i in &incidents {
        assert_eq!(
            i.verdict.kind, "watermark-stall",
            "unexpected co-firing detector: {:?}",
            i.verdict
        );
        assert!(i.verdict.detail.contains("frozen"));
        // Every frozen-evidence round after the stall shows the same
        // watermark and zero closes.
        let last = i.rounds.last().expect("evidence");
        assert_eq!(last.closed_windows, 0.0);
        assert!(last.records > 0.0);
    }
}

/// Scenario: straggler shard. A Zipf-skewed key draw with a rebalance
/// cut trips the fabric-level skew detectors; the per-shard engine
/// detectors stay silent (the shards themselves are healthy).
#[test]
fn zipf_skew_fires_only_the_fabric_skew_detectors() {
    let reg = MetricsRegistry::active();
    let mut cfg = ClusterConfig {
        shards: 5,
        metrics: reg.clone(),
        ..ClusterConfig::default()
    };
    cfg.engine.cores = 16;
    cfg.engine.threads = 1;
    cfg.engine.sender = SenderConfig {
        bundle_rows: 2_000,
        bundles_per_watermark: 10,
        nic: NicModel::rdma_40g(),
    };
    let report = ShardedCluster::new(cfg)
        .run_elastic(
            || KvSource::new(1, 50_000, 20_000_000).with_zipf(1.0),
            benchmarks::sum_per_key,
            30,
            5,
            ElasticPlan {
                at_epoch: 2,
                retarget: Retarget::Rebalance { tolerance: 1.05 },
            },
        )
        .expect("zipf rebalance run");
    assert!(
        report.incidents.is_empty(),
        "healthy shards must not file engine incidents: {:?}",
        kinds(&report.incidents)
    );
    let mut incidents = IncidentReport::new(report.incidents.clone());
    let health = HealthReport::compute(&reg.snapshot(), &HealthConfig::default());
    incidents.extend_from_health(&health);
    let fabric_kinds: Vec<&str> = incidents
        .incidents
        .iter()
        .filter(|i| i.shard == FABRIC_SHARD)
        .map(|i| i.verdict.kind.as_str())
        .collect();
    assert!(
        fabric_kinds.contains(&"slot-skew"),
        "zipf skew must trip slot-skew: {fabric_kinds:?}"
    );
    for kind in &fabric_kinds {
        assert!(
            matches!(*kind, "slot-skew" | "straggler" | "watermark-lag"),
            "unexpected fabric detector: {kind}"
        );
    }
    // The folded report round-trips byte-for-byte, fabric tag included.
    let jsonl = incidents.to_jsonl();
    let parsed = IncidentReport::parse_jsonl(&jsonl).expect("parse");
    assert_eq!(parsed.to_jsonl(), jsonl);
    assert!(parsed.incidents.iter().any(|i| i.shard == FABRIC_SHARD));
}

/// A clean YSB run files zero incidents, and its artifact is the bare
/// (still diffable) trailer line.
#[test]
fn clean_ysb_files_zero_incidents() {
    let obs = Obs::metrics_only();
    let cfg = RunConfig {
        cores: 16,
        sender: SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        obs: obs.clone(),
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(
            YsbSource::new(1, 10_000, 1_000, 20_000_000),
            benchmarks::ysb(1_000),
            40,
        )
        .expect("clean run");
    assert!(report.windows_closed > 0);
    let incidents = obs.recorder.incidents();
    assert!(
        incidents.is_empty(),
        "clean YSB tripped: {:?}",
        kinds(&incidents)
    );
    assert_eq!(
        IncidentReport::new(incidents).to_jsonl(),
        "{\"type\":\"incidents\",\"count\":0}\n"
    );
    // The recorder ran the whole time: its rings hold the recent rounds
    // and its pool accounting is visible in the metrics export.
    assert!(!obs.recorder.rounds().is_empty());
    assert!(obs.recorder.accounted_bytes() > 0);
    let dump = MetricsDump::parse_jsonl(&obs.metrics.export_jsonl()).expect("parse");
    assert_eq!(
        dump.gauge("recorder.accounted_bytes").map(|g| g.value),
        Some(obs.recorder.accounted_bytes() as f64)
    );
}

/// Acceptance: clean same-seed runs file zero incidents and export a
/// bit-identical artifact (and report rendering) across repeats and
/// host thread counts {1, 2, 4, 8, 16} — host parallelism must not
/// leak into the incident stream.
#[test]
fn clean_artifacts_are_byte_identical_across_repeats_and_threads() {
    let artifact = |threads: usize| {
        let obs = Obs::metrics_only();
        let cfg = RunConfig {
            cores: 16,
            threads,
            sender: SenderConfig {
                bundle_rows: 2_000,
                bundles_per_watermark: 5,
                nic: NicModel::rdma_40g(),
            },
            obs: obs.clone(),
            ..RunConfig::default()
        };
        Engine::new(cfg)
            .run(
                YsbSource::new(1, 10_000, 1_000, 20_000_000),
                benchmarks::ysb(1_000),
                40,
            )
            .expect("clean run");
        let report = IncidentReport::new(obs.recorder.incidents());
        (report.to_jsonl(), report.render())
    };
    let baseline = artifact(1);
    assert_eq!(baseline.0, "{\"type\":\"incidents\",\"count\":0}\n");
    assert_eq!(artifact(1), baseline, "same-seed repeat diverged");
    for threads in [2usize, 4, 8, 16] {
        assert_eq!(artifact(threads), baseline, "threads={threads}");
    }
}

/// Degraded-scenario determinism: with the serial spine pinned
/// (`threads = 1`, the same pinning the fig10/cluster exports use for
/// placement-sensitive gauges), same-seed spill-storm artifacts are
/// byte-identical across repeats and round-trip through parse → export
/// unchanged.
#[test]
fn spill_artifacts_are_byte_identical_across_repeats() {
    let artifact = || {
        let obs = spill_run(1);
        IncidentReport::new(obs.recorder.incidents()).to_jsonl()
    };
    let baseline = artifact();
    assert!(baseline.contains("\"kind\":\"spill-storm\""));
    assert_eq!(artifact(), baseline, "same-seed repeat diverged");
    let parsed = IncidentReport::parse_jsonl(&baseline).expect("parse");
    assert_eq!(parsed.to_jsonl(), baseline);
    assert!(!parsed.render().is_empty());
}

//! Quickstart: the paper's Listing-1 pipeline — sum values per key over
//! 1-second fixed windows — on a synthetic key/value stream.
//!
//! Run with: `cargo run --release --example quickstart`

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use streambox_hbm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the pipeline: window into 1-second windows, then sum the
    //    value column per key (Listing 1 of the paper).
    let pipeline = PipelineBuilder::new(WindowSpec::fixed(1_000_000_000))
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
        .build();
    println!("pipeline: {:?}", pipeline.op_names());

    // 2. A seeded source: 1,000 distinct keys, values < 100,
    //    500k records per second of event time.
    let source = KvSource::new(42, 1_000, 500_000).with_value_range(100);

    // 3. Run on the default (scaled-down KNL) machine with 16 cores.
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 10_000,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let report = Engine::new(cfg).run(source, pipeline, 100)?;

    // 4. Inspect the results.
    println!(
        "ingested {} records in {:.3} simulated seconds ({:.1} M records/s)",
        report.records_in,
        report.sim_secs,
        report.throughput_mrps()
    );
    println!(
        "closed {} windows, emitted {} (key, sum) records",
        report.windows_closed, report.output_records
    );
    println!(
        "peak bandwidth: HBM {:.1} GB/s, DRAM {:.1} GB/s; max output delay {:.3} s",
        report.peak_hbm_bw_gbps, report.peak_dram_bw_gbps, report.max_output_delay_secs
    );

    // Show a few output records from the first closed window.
    if let Some(bundle) = report.outputs.first() {
        println!("first window sample (key -> sum):");
        for r in 0..bundle.rows().min(5) {
            println!(
                "  {:>6} -> {}",
                bundle.value(r, Col(0)),
                bundle.value(r, Col(1))
            );
        }
    }
    Ok(())
}

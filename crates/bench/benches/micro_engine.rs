//! Criterion microbenchmarks of end-to-end engine runs (host wall-clock):
//! how long the functional execution itself takes, independent of the
//! simulated-time model.

use criterion::{criterion_group, criterion_main, Criterion};

use sbx_engine::{benchmarks, Engine, RunConfig};
use sbx_ingress::{KvSource, NicModel, SenderConfig, YsbSource};

fn quick_cfg(threads: usize) -> RunConfig {
    RunConfig {
        cores: 16,
        threads,
        sender: SenderConfig {
            bundle_rows: 5_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_e2e");
    group.sample_size(10);

    group.bench_function("sum_per_key_100k", |b| {
        b.iter(|| {
            Engine::new(quick_cfg(2))
                .run(
                    KvSource::new(1, 1_000, 1_000_000).with_value_range(1_000),
                    benchmarks::sum_per_key(),
                    20,
                )
                .unwrap()
        })
    });

    group.bench_function("ysb_100k", |b| {
        b.iter(|| {
            Engine::new(quick_cfg(2))
                .run(YsbSource::new(1, 1_000, 100, 1_000_000), benchmarks::ysb(100), 20)
                .unwrap()
        })
    });

    group.bench_function("topk_100k_serial", |b| {
        b.iter(|| {
            Engine::new(quick_cfg(1))
                .run(
                    KvSource::new(1, 1_000, 1_000_000).with_value_range(1_000),
                    benchmarks::topk_per_key(3),
                    20,
                )
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);

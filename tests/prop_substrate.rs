//! Randomized property tests for the simulation substrate: the pool
//! allocator's capacity invariants, the demand balancer's knob, the fluid
//! simulator's bounds, and the cost model's monotonicity.
//!
//! Cases are generated from a fixed-seed [`SbxRng`], so every run checks
//! the exact same inputs (fully deterministic, offline-friendly stand-in
//! for the earlier proptest suite).

use sbx_prng::SbxRng;
use streambox_hbm::engine::DemandBalancer;
use streambox_hbm::prelude::*;
use streambox_hbm::simmem::{
    AccessProfile, CostModel, FluidSim, MemPool, MemSpec, TaskId, TaskSpec,
};

const CASES: u64 = 64;

fn spec(capacity_bytes: u64) -> MemSpec {
    MemSpec {
        capacity_bytes,
        bandwidth_bytes_per_sec: 375e9,
        latency_ns: 172.0,
    }
}

/// The pool never hands out more than its capacity, and freeing everything
/// (plus trim) returns accounting to zero.
#[test]
fn pool_capacity_is_never_exceeded() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_0001);
    for _ in 0..CASES {
        let sizes: Vec<u64> = {
            let n = rng.random_range(1..40) as usize;
            rng.vec_in(n, 1..20_000)
        };
        let capacity_kib = rng.random_range(64..2_048);
        let pool = MemPool::new(MemKind::Hbm, spec(capacity_kib * 1024), 0.0);
        let mut live = Vec::new();
        for &s in &sizes {
            if let Ok(buf) = pool.alloc_u64(s as usize, Priority::Normal) {
                live.push(buf);
            }
            assert!(pool.used_bytes() <= pool.capacity_bytes());
        }
        live.clear();
        pool.trim();
        assert_eq!(pool.used_bytes(), 0);
    }
}

/// Reserved-priority allocations can use strictly more of the pool than
/// normal ones, but never more than capacity.
#[test]
fn reserve_ordering_holds() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_0002);
    for _ in 0..CASES {
        let reserve = rng.random_f64();
        let pool = MemPool::new(MemKind::Hbm, spec(1 << 20), reserve);
        let normal = pool.available_bytes(Priority::Normal);
        let reserved = pool.available_bytes(Priority::Reserved);
        assert!(normal <= reserved);
        assert!(reserved <= pool.capacity_bytes());
    }
}

/// Whatever sequence of monitor samples arrives, the knob stays bounded in
/// [0, 1] on both axes.
#[test]
fn balancer_knob_stays_bounded() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_0003);
    for _ in 0..CASES {
        let mut b = DemandBalancer::new();
        let steps = rng.random_range(0..200);
        for _ in 0..steps {
            let hbm = rng.random_f64() * 1.2;
            let dram = rng.random_f64() * 1.5;
            let headroom = rng.random_bool(0.5);
            b.update(hbm, dram, headroom);
            let k = b.knob();
            assert!((0.0..=1.0).contains(&k.k_low), "k_low {}", k.k_low);
            assert!((0.0..=1.0).contains(&k.k_high), "k_high {}", k.k_high);
        }
    }
}

/// Over many placements, the HBM fraction tracks the knob value.
#[test]
fn placement_fraction_tracks_knob() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_0004);
    for _ in 0..20 {
        let steps = rng.random_range(0..20);
        let mut b = DemandBalancer::new();
        for _ in 0..steps {
            b.update(1.0, 0.0, true);
        }
        let k = b.knob().k_low;
        let n = 2_000;
        let hbm = (0..n)
            .filter(|_| b.place(streambox_hbm::engine::ImpactTag::Low).0 == MemKind::Hbm)
            .count();
        let frac = hbm as f64 / n as f64;
        assert!((frac - k).abs() < 1e-3, "frac {frac} vs knob {k}");
    }
}

/// Fluid-simulated makespan is bounded below by the longest task and above
/// by the serial sum.
#[test]
fn fluid_makespan_bounds() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_0005);
    for _ in 0..CASES {
        let model = CostModel::new(MachineConfig::knl());
        let n = rng.random_range(1..30);
        let cores = rng.random_range(1..64) as u32;
        let tasks: Vec<TaskSpec> = (0..n)
            .map(|i| TaskSpec {
                id: TaskId(i),
                profile: AccessProfile::new().cpu(1.0e6 + rng.random_f64() * (1.0e9 - 1.0e6)),
                deps: vec![],
            })
            .collect();
        let report = FluidSim::new(model.clone(), cores)
            .run(&tasks)
            .expect("valid graph");
        let solo: Vec<f64> = tasks
            .iter()
            .map(|t| model.time_secs(&t.profile, 1))
            .collect();
        let longest = solo.iter().copied().fold(0.0, f64::max);
        let serial: f64 = solo.iter().sum();
        assert!(report.makespan_secs >= longest - 1e-12);
        assert!(report.makespan_secs <= serial + 1e-9);
    }
}

/// A chain of dependent tasks serializes exactly.
#[test]
fn fluid_chain_serializes() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_0006);
    for _ in 0..CASES {
        let model = CostModel::new(MachineConfig::knl());
        let n = rng.random_range(1..20);
        let tasks: Vec<TaskSpec> = (0..n)
            .map(|i| TaskSpec {
                id: TaskId(i),
                profile: AccessProfile::new().cpu(1.0e6 + rng.random_f64() * (1.0e8 - 1.0e6)),
                deps: if i == 0 { vec![] } else { vec![TaskId(i - 1)] },
            })
            .collect();
        let report = FluidSim::new(model.clone(), 64)
            .run(&tasks)
            .expect("valid graph");
        let serial: f64 = tasks.iter().map(|t| model.time_secs(&t.profile, 1)).sum();
        assert!((report.makespan_secs - serial).abs() < 1e-9 * serial.max(1.0));
    }
}

/// Cost-model time is monotone: more work never takes less time, and more
/// cores never take more time.
#[test]
fn cost_model_is_monotone() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_0007);
    for _ in 0..CASES {
        let seq = rng.random_f64() * 1e12;
        let rand_acc = rng.random_f64() * 1e9;
        let cpu = rng.random_f64() * 1e12;
        let cores = rng.random_range(1..128) as u32;
        let m = CostModel::new(MachineConfig::knl());
        let p = AccessProfile::new()
            .seq(MemKind::Hbm, seq)
            .rand(MemKind::Dram, rand_acc)
            .cpu(cpu);
        let bigger = p.merge(&AccessProfile::new().seq(MemKind::Hbm, 1.0).cpu(1.0));
        assert!(m.time_secs(&bigger, cores) >= m.time_secs(&p, cores));
        assert!(m.time_secs(&p, cores + 1) <= m.time_secs(&p, cores) + 1e-15);
    }
}

/// Bandwidth-monitor totals equal the sum of recorded traffic however it
/// is spread over time.
#[test]
fn bandwidth_monitor_conserves_bytes() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_0008);
    for _ in 0..CASES {
        let env = MemEnv::new(MachineConfig::knl());
        let chunks = rng.random_range(0..50);
        let mut total = 0u64;
        for _ in 0..chunks {
            let bytes = rng.random_range(1..1_000_000);
            let tens_ms = rng.random_range(0..10);
            env.monitor()
                .record_spread(MemKind::Dram, bytes, tens_ms * 10_000_000, 7_777_777);
            total += bytes;
        }
        assert_eq!(env.monitor().total_bytes(MemKind::Dram), total);
    }
}

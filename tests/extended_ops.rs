//! End-to-end tests for the extended Table-1 operators (Sample,
//! MapRecords, Union, Cogroup) running inside full engine pipelines.

use std::collections::HashMap;

use streambox_hbm::engine::ops::SideAgg;
use streambox_hbm::prelude::*;

const WINDOW: u64 = 1_000_000_000;

fn cfg() -> RunConfig {
    RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 1_000,
            bundles_per_watermark: 4,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    }
}

#[test]
fn sample_then_count_is_a_subset_of_full_count() {
    let spec = WindowSpec::fixed(WINDOW);
    let run = |fraction: f64| {
        let pipeline = PipelineBuilder::new(spec)
            .sample(Col(0), fraction)
            .windowed()
            .keyed_aggregate(Col(0), Col(1), AggKind::Count)
            .build();
        let report = Engine::new(cfg())
            .run(KvSource::new(7, 1_000, 50_000), pipeline, 10)
            .expect("run");
        let total: u64 = report
            .outputs
            .iter()
            .flat_map(|b| (0..b.rows()).map(move |r| b.value(r, Col(1))))
            .sum();
        total
    };
    let full = run(1.0);
    let half = run(0.5);
    assert_eq!(full, 10_000);
    assert!(half > 3_500 && half < 6_500, "kept {half} of 10000");
}

#[test]
fn map_records_feeds_downstream_aggregation() {
    // Map: square the value, drop odd keys; then sum per key.
    let spec = WindowSpec::fixed(WINDOW);
    let pipeline = PipelineBuilder::new(spec)
        .map_records(Schema::kvt(), |row, out| {
            if row[0] % 2 == 0 {
                out.extend_from_slice(&[row[0], row[1] * row[1], row[2]]);
            }
        })
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
        .build();
    let report = Engine::new(cfg())
        .run(
            KvSource::new(8, 10, 50_000).with_value_range(100),
            pipeline,
            10,
        )
        .expect("run");

    // Oracle.
    let mut src = KvSource::new(8, 10, 50_000).with_value_range(100);
    let mut flat = Vec::new();
    src.fill(10_000, &mut flat);
    let mut expect: HashMap<(u64, u64), u64> = HashMap::new();
    for r in flat.chunks(3) {
        if r[0] % 2 == 0 {
            *expect.entry((r[2] / WINDOW, r[0])).or_insert(0) += r[1] * r[1];
        }
    }
    let mut got: HashMap<(u64, u64), u64> = HashMap::new();
    for b in &report.outputs {
        for r in 0..b.rows() {
            got.insert(
                (b.value(r, Col(2)) / WINDOW, b.value(r, Col(0))),
                b.value(r, Col(1)),
            );
        }
    }
    assert_eq!(got, expect);
}

#[test]
fn union_merges_two_streams_into_one_aggregation() {
    let spec = WindowSpec::fixed(WINDOW);
    let pipeline = PipelineBuilder::new(spec)
        .union()
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::Count)
        .build();
    let l = KvSource::new(11, 5, 50_000).with_value_range(10);
    let r = KvSource::new(12, 5, 50_000).with_value_range(10);
    let report = Engine::new(cfg()).run_pair(l, r, pipeline, 5).expect("run");
    let total: u64 = report
        .outputs
        .iter()
        .flat_map(|b| (0..b.rows()).map(move |r| b.value(r, Col(1))))
        .sum();
    // Both streams' records are counted together.
    assert_eq!(total, report.records_in);
    assert_eq!(report.records_in, 10_000);
}

#[test]
fn cogroup_matches_per_side_oracles() {
    let spec = WindowSpec::fixed(WINDOW);
    let pipeline = PipelineBuilder::new(spec)
        .windowed()
        .cogroup(Col(0), Col(1), [SideAgg::Sum, SideAgg::Count])
        .build();
    let l = KvSource::new(21, 20, 50_000).with_value_range(1_000);
    let r = KvSource::new(22, 20, 50_000).with_value_range(1_000);
    let report = Engine::new(cfg()).run_pair(l, r, pipeline, 5).expect("run");

    let oracle = |seed: u64| {
        let mut s = KvSource::new(seed, 20, 50_000).with_value_range(1_000);
        let mut f = Vec::new();
        s.fill(5_000, &mut f);
        let mut m: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
        for row in f.chunks(3) {
            let e = m.entry((row[2] / WINDOW, row[0])).or_insert((0, 0));
            e.0 += row[1];
            e.1 += 1;
        }
        m
    };
    let (lo, ro) = (oracle(21), oracle(22));

    let mut seen = 0usize;
    for b in &report.outputs {
        for row in 0..b.rows() {
            let key = (b.value(row, Col(3)) / WINDOW, b.value(row, Col(0)));
            let l_sum = lo.get(&key).map_or(0, |e| e.0);
            let r_count = ro.get(&key).map_or(0, |e| e.1);
            assert_eq!(b.value(row, Col(1)), l_sum, "left sum for {key:?}");
            assert_eq!(b.value(row, Col(2)), r_count, "right count for {key:?}");
            seen += 1;
        }
    }
    let mut all_keys: std::collections::HashSet<_> = lo.keys().collect();
    all_keys.extend(ro.keys());
    assert_eq!(seen, all_keys.len(), "one output row per key per window");
}

/// CQL-style pane combining: a sliding-window Sum computed from
/// single-copy panes must equal the pane-duplicating implementation.
#[test]
fn pane_combining_matches_duplicating_sliding_sum() {
    use streambox_hbm::engine::ops::{AggKind, KeyedAggregate};

    // 4 panes/window; the 20k-record run spans ~8 panes.
    let spec = WindowSpec::sliding(100_000_000, 25_000_000);
    let run = |panes: bool| {
        let pipeline = if panes {
            PipelineBuilder::new(spec)
                .windowed_panes()
                .op(Box::new(
                    KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Sum).with_pane_combining(),
                ))
                .build()
        } else {
            PipelineBuilder::new(spec)
                .windowed()
                .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
                .build()
        };
        let report = Engine::new(cfg())
            .run(
                KvSource::new(31, 50, 100_000).with_value_range(1_000),
                pipeline,
                20,
            )
            .expect("run");
        let mut digest: Vec<(u64, u64, u64)> = report
            .outputs
            .iter()
            .flat_map(|b| {
                (0..b.rows())
                    .map(move |r| (b.value(r, Col(2)), b.value(r, Col(0)), b.value(r, Col(1))))
            })
            .collect();
        digest.sort_unstable();
        digest
    };
    let duplicating = run(false);
    let combining = run(true);
    assert!(!duplicating.is_empty());
    assert_eq!(combining, duplicating);
}

/// Pane combining must also be transparent for plain fixed windows.
#[test]
fn pane_combining_is_transparent_for_fixed_windows() {
    use streambox_hbm::engine::ops::{AggKind, KeyedAggregate};

    let spec = WindowSpec::fixed(WINDOW);
    let pipeline = PipelineBuilder::new(spec)
        .windowed_panes()
        .op(Box::new(
            KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Count).with_pane_combining(),
        ))
        .build();
    let report = Engine::new(cfg())
        .run(KvSource::new(32, 10, 50_000), pipeline, 10)
        .expect("run");
    let total: u64 = report
        .outputs
        .iter()
        .flat_map(|b| (0..b.rows()).map(move |r| b.value(r, Col(1))))
        .sum();
    assert_eq!(total, report.records_in);
}

//! `sbx` — the StreamBox-HBM command-line driver.
//!
//! ```text
//! sbx bench <name> [--cores N] [--bundles N] [--bundle-rows N]
//!                  [--nic rdma|eth|unlimited] [--mode hybrid|caching|dram|nokpa]
//!                  [--grouping sort|hash|row|adaptive]
//!                  [--keys N] [--rate N] [--samples-csv PATH]
//!                  [--checkpoint-interval N] [--hbm-mib N]
//!                  [--metrics-out PATH] [--trace-out PATH] [--incidents-out PATH]
//! sbx recover <name> [--crash-after-bundles N] [--checkpoint-interval N]
//!                    [bench flags]
//! sbx cluster <name> [--shards N] [--slots N] [--bundles N] [--bundle-rows N]
//!                    [--interval N] [--keys N] [--rate N] [--skew THETA]
//!                    [--rescale-at EPOCH] [--rescale-to N] [--rebalance TOL]
//!                    [--link rdma|eth|unlimited] [--cores N]
//!                    [--metrics-out PATH] [--trace-out PATH] [--health-out PATH]
//!                    [--incidents-out PATH]
//! sbx report <metrics.jsonl> [--timeline] [--critical-path <spans.jsonl>]
//!                            [--cluster-critical-path <stitched.jsonl>]
//!                            [--health] [--incidents <incidents.jsonl>] [--top N]
//! sbx figure <2|7|8|9|10|11|ablation>
//! sbx machines
//! sbx list
//! ```
//!
//! `recover` crashes the run after the given bundle count, restores the
//! latest barrier snapshot, resumes, and verifies the committed outputs
//! are byte-identical to a fault-free run (exactly-once).
//!
//! `--metrics-out` exports the run's metrics registry as JSONL;
//! `--trace-out` additionally records one span per operator invocation
//! (in simulated time) and writes a Chrome trace loadable in Perfetto —
//! or span JSONL if the path ends in `.jsonl`. `sbx report` rebuilds the
//! run summary and the Figure-10 time series purely from an exported
//! metrics file; `--timeline` adds the per-round memory-tier timeline,
//! and `--critical-path <spans.jsonl>` runs critical-path attribution
//! over a span JSONL export (top-k controlled by `--top`). Because every
//! exported value is simulated-time, both renderings are byte-identical
//! across same-seed runs.
//!
//! `cluster` runs a benchmark sharded across N per-shard engines behind
//! the hash-slot router (`sbx-cluster`), optionally cutting a coordinated
//! epoch mid-run to grow/shrink (`--rescale-at` + `--rescale-to`) or to
//! rebalance hot slots (`--rescale-at` + `--rebalance`); `--skew` draws
//! keys from a Zipf distribution to manufacture a hot shard. A metrics
//! export of a cluster run feeds `sbx report`, which renders the
//! per-shard occupancy/skew table and per-link utilization purely from
//! the exported `cluster.*` counters.
//!
//! Cluster observability (DESIGN.md §13): `sbx cluster --trace-out PATH`
//! records every shard engine's span stream, stitches them with priced
//! fabric spans (barrier-alignment waits and shuffle link transfers)
//! into one cluster trace, and writes span JSONL (`.jsonl` paths) or a
//! Perfetto trace with one track per shard plus a fabric track;
//! `--health-out PATH` writes the shard-health detector report as
//! deterministic JSONL. `sbx report --cluster-critical-path
//! <stitched.jsonl>` runs the distributed critical-path analysis, whose
//! {compute, shuffle, barrier-wait, straggler-slack, fabric} split
//! partitions the simulated makespan exactly; `--health` re-evaluates
//! the health detectors from the metrics export.
//!
//! Incidents (DESIGN.md §15): every run carries an always-on flight
//! recorder whose online anomaly detectors (spill storms, output-delay
//! surges, watermark stalls, HBM pressure, backpressure) fire at round
//! boundaries; `--incidents-out PATH` writes the captured incident
//! reports — verdict plus the frozen evidence window — as deterministic
//! JSONL (same-seed runs write the same bytes). On `sbx cluster` the
//! file also folds in the fabric-level health signals. `--hbm-mib N`
//! shrinks the simulated HBM capacity to manufacture degraded runs.
//! `sbx report --incidents <incidents.jsonl>` renders the stories.

// sbx-lint: out-of-scope(no-panic, CLI entry point; bad arguments abort with a message)
// sbx-lint: out-of-scope(raw-alloc, CLI-side reporting and table formatting)
// Reporting binaries talk to stdout by design.
// sbx-lint: allow-file(no-adhoc-io, CLI front-end reports to stdout by design)
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::process::ExitCode;

use streambox_hbm::prelude::*;

const BENCHMARKS: [&str; 10] = [
    "topk",
    "sum",
    "median",
    "avg",
    "avg-all",
    "unique",
    "join",
    "filter",
    "power-grid",
    "ysb",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sbx bench <name> [--cores N] [--bundles N] [--bundle-rows N]\n\
         \x20                [--nic rdma|eth|unlimited] [--mode hybrid|caching|dram|nokpa]\n\
         \x20                [--grouping sort|hash|row|adaptive] (sum and ysb)\n\
         \x20                [--keys N] [--rate N] [--checkpoint-interval N] [--hbm-mib N]\n\
         \x20                [--metrics-out PATH] [--trace-out PATH] [--incidents-out PATH]\n\
         \x20 sbx recover <name> [--crash-after-bundles N] [--checkpoint-interval N]\n\
         \x20                [bench flags]\n\
         \x20 sbx cluster <name> [--shards N] [--slots N] [--bundles N] [--bundle-rows N]\n\
         \x20                [--interval N] [--keys N] [--rate N] [--skew THETA]\n\
         \x20                [--rescale-at EPOCH] [--rescale-to N] [--rebalance TOL]\n\
         \x20                [--link rdma|eth|unlimited] [--cores N] [--metrics-out PATH]\n\
         \x20                [--trace-out PATH] [--health-out PATH] [--incidents-out PATH]\n\
         \x20 sbx report <metrics.jsonl> [--timeline] [--critical-path <spans.jsonl>] [--top N]\n\
         \x20                [--cluster-critical-path <stitched.jsonl>] [--health]\n\
         \x20                [--incidents <incidents.jsonl>]\n\
         \x20 sbx figure <2|7|8|9|10|11|ablation>\n  sbx machines\n  sbx list\n\n\
         benchmarks: {}",
        BENCHMARKS.join(", ")
    );
    ExitCode::from(2)
}

#[derive(Debug, Clone)]
struct BenchArgs {
    name: String,
    cores: u32,
    bundles: usize,
    bundle_rows: usize,
    nic: NicModel,
    mode: EngineMode,
    grouping: GroupingSpec,
    keys: u64,
    rate: u64,
    samples_csv: Option<String>,
    checkpoint_interval: Option<u64>,
    crash_after: Option<u64>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    /// Flight-recorder incident report (deterministic JSONL).
    incidents_out: Option<String>,
    /// Shrink the simulated HBM capacity to N MiB (degraded-machine runs
    /// for incident demos; costs/bandwidths are untouched).
    hbm_mib: Option<u64>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            name: String::new(),
            cores: 64,
            bundles: 50,
            bundle_rows: 20_000,
            nic: NicModel::rdma_40g(),
            mode: EngineMode::Hybrid,
            grouping: GroupingSpec::SortMerge,
            keys: 10_000,
            rate: 20_000_000,
            samples_csv: None,
            checkpoint_interval: None,
            crash_after: None,
            metrics_out: None,
            trace_out: None,
            incidents_out: None,
            hbm_mib: None,
        }
    }
}

fn parse_bench_args(args: &[String]) -> Result<BenchArgs, String> {
    let mut out = BenchArgs {
        name: args.first().cloned().unwrap_or_default(),
        ..Default::default()
    };
    if !BENCHMARKS.contains(&out.name.as_str()) {
        return Err(format!("unknown benchmark '{}'", out.name));
    }
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--cores" => out.cores = value.parse().map_err(|_| "bad --cores")?,
            "--bundles" => out.bundles = value.parse().map_err(|_| "bad --bundles")?,
            "--bundle-rows" => {
                out.bundle_rows = value.parse().map_err(|_| "bad --bundle-rows")?;
            }
            "--keys" => out.keys = value.parse().map_err(|_| "bad --keys")?,
            "--samples-csv" => out.samples_csv = Some(value.clone()),
            "--metrics-out" => out.metrics_out = Some(value.clone()),
            "--trace-out" => out.trace_out = Some(value.clone()),
            "--incidents-out" => out.incidents_out = Some(value.clone()),
            "--hbm-mib" => {
                let mib: u64 = value.parse().map_err(|_| "bad --hbm-mib")?;
                if mib == 0 {
                    return Err("--hbm-mib must be positive".into());
                }
                out.hbm_mib = Some(mib);
            }
            "--rate" => out.rate = value.parse().map_err(|_| "bad --rate")?,
            "--checkpoint-interval" => {
                let iv: u64 = value.parse().map_err(|_| "bad --checkpoint-interval")?;
                if iv == 0 {
                    return Err("--checkpoint-interval must be positive".into());
                }
                out.checkpoint_interval = Some(iv);
            }
            "--crash-after-bundles" => {
                out.crash_after = Some(value.parse().map_err(|_| "bad --crash-after-bundles")?);
            }
            "--nic" => {
                out.nic = match value.as_str() {
                    "rdma" => NicModel::rdma_40g(),
                    "eth" => NicModel::ethernet_10g(),
                    "unlimited" => NicModel::unlimited(),
                    other => return Err(format!("unknown nic '{other}'")),
                }
            }
            "--mode" => {
                out.mode = match value.as_str() {
                    "hybrid" => EngineMode::Hybrid,
                    "caching" => EngineMode::CachingKpa,
                    "dram" => EngineMode::DramOnly,
                    "nokpa" => EngineMode::CachingNoKpa,
                    other => return Err(format!("unknown mode '{other}'")),
                }
            }
            "--grouping" => {
                out.grouping = GroupingSpec::parse(value)
                    .ok_or_else(|| format!("unknown grouping '{value}'"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    Ok(out)
}

fn pipeline_for(name: &str) -> Pipeline {
    match name {
        "topk" => benchmarks::topk_per_key(3),
        "sum" => benchmarks::sum_per_key(),
        "median" => benchmarks::median_per_key(),
        "avg" => benchmarks::avg_per_key(),
        "avg-all" => benchmarks::avg_all(),
        "unique" => benchmarks::unique_count_per_key(),
        "join" => benchmarks::temporal_join(),
        "filter" => benchmarks::windowed_filter(),
        "power-grid" => benchmarks::power_grid(),
        "ysb" => benchmarks::ysb(1_000),
        _ => unreachable!("validated"),
    }
}

/// [`pipeline_for`] honoring `--grouping`: the non-default backends are
/// wired for the keyed-aggregation benchmarks with grouped constructors.
fn grouped_pipeline_for(name: &str, grouping: GroupingSpec) -> Result<Pipeline, String> {
    if grouping == GroupingSpec::SortMerge {
        return Ok(pipeline_for(name));
    }
    match name {
        "sum" => Ok(benchmarks::sum_per_key_grouped(grouping)),
        "ysb" => Ok(benchmarks::ysb_grouped(1_000, grouping)),
        _ => Err(format!(
            "--grouping {} is only wired for benchmarks 'sum' and 'ysb'",
            grouping.label()
        )),
    }
}

/// Runs a single-stream benchmark, checkpointed when `interval` is set.
fn run_single<S: Source>(
    engine: Engine,
    src: S,
    pipeline: Pipeline,
    bundles: usize,
    interval: Option<u64>,
    coord: &mut CheckpointCoordinator,
) -> Result<RunReport, streambox_hbm::engine::EngineError> {
    match interval {
        Some(iv) => engine.run_with_hooks(src, pipeline, bundles, Some(iv), coord),
        None => engine.run(src, pipeline, bundles),
    }
}

fn run_bench(a: BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    // Tracing implies metrics; metrics alone keep the parallel prefix.
    let obs = if a.trace_out.is_some() {
        Obs::enabled()
    } else if a.metrics_out.is_some() {
        Obs::metrics_only()
    } else {
        Obs::noop()
    };
    let mut machine = MachineConfig::knl();
    if let Some(mib) = a.hbm_mib {
        machine.hbm.capacity_bytes = mib * 1024 * 1024;
    }
    let mut cfg = RunConfig {
        machine,
        cores: a.cores,
        mode: a.mode,
        sender: SenderConfig {
            bundle_rows: a.bundle_rows,
            bundles_per_watermark: 10,
            nic: a.nic,
        },
        obs: obs.clone(),
        ..RunConfig::default()
    };
    if a.incidents_out.is_some() {
        // Incident artifacts promise byte-identical same-seed exports;
        // pool placement under host-thread interleaving is the one
        // non-simulated input the recorder can see, so pin the serial
        // spine (the same pinning the fig10/cluster exports use).
        cfg.threads = 1;
    }
    if a.crash_after.is_some() {
        return Err("--crash-after-bundles only applies to 'sbx recover'".into());
    }
    let ck = a.checkpoint_interval;
    if ck.is_some() && matches!(a.name.as_str(), "join" | "filter") {
        return Err("--checkpoint-interval is not supported for two-stream benchmarks".into());
    }
    println!(
        "running '{}' on {} ({} cores, {}, {})",
        a.name, cfg.machine.name, a.cores, a.nic.name, a.mode
    );
    let engine = Engine::new(cfg);
    let pipeline = grouped_pipeline_for(&a.name, a.grouping)?;
    let mut coord = CheckpointCoordinator::new();
    let report = match a.name.as_str() {
        "join" | "filter" => {
            let l = KvSource::new(1, a.keys, a.rate).with_value_range(1_000_000);
            let r = KvSource::new(2, a.keys, a.rate).with_value_range(1_000_000);
            engine.run_pair(l, r, pipeline, a.bundles / 2)?
        }
        "power-grid" => run_single(
            engine,
            PowerGridSource::new(1, 100, 20, a.rate),
            pipeline,
            a.bundles,
            ck,
            &mut coord,
        )?,
        "ysb" => run_single(
            engine,
            YsbSource::new(1, 10_000, 1_000, a.rate),
            pipeline,
            a.bundles,
            ck,
            &mut coord,
        )?,
        _ => run_single(
            engine,
            KvSource::new(1, a.keys, a.rate).with_value_range(1_000_000),
            pipeline,
            a.bundles,
            ck,
            &mut coord,
        )?,
    };
    println!(
        "  throughput     : {:>10.2} M records/s ({} records in {:.4} s simulated)",
        report.throughput_mrps(),
        report.records_in,
        report.sim_secs
    );
    println!(
        "  windows        : {:>10} closed, {} output records",
        report.windows_closed, report.output_records
    );
    println!(
        "  bandwidth peak : {:>10.1} GB/s HBM, {:.1} GB/s DRAM",
        report.peak_hbm_bw_gbps, report.peak_dram_bw_gbps
    );
    if report.windows_closed == 0 {
        // No window ever closed, so there are no delay observations:
        // zeros here would read as "instant", which is the opposite of
        // the truth.
        println!("  output delay   : {:>10} (no windows closed)", "n/a");
        println!("  delay quantiles: {:>10}", "n/a");
    } else {
        println!(
            "  output delay   : {:>10.4} s max ({:.4} s avg)",
            report.max_output_delay_secs, report.avg_output_delay_secs
        );
        println!(
            "  delay quantiles: {:>10.4} s p50, {:.4} s p95, {:.4} s p99",
            report.p50_output_delay_secs,
            report.p95_output_delay_secs,
            report.p99_output_delay_secs
        );
    }
    println!(
        "  HBM peak used  : {:>10} KiB (round-boundary peak)",
        report.hbm_peak_used_bytes / 1024
    );
    if let Some(s) = report.samples.last() {
        println!("  knob (k_low, k_high): ({:.2}, {:.2})", s.k_low, s.k_high);
    }
    if ck.is_some() {
        println!(
            "  checkpoints    : {:>10} committed, last epoch {}, {} KiB store ({} KiB DRAM used)",
            coord.samples().len(),
            coord.store().latest_epoch().unwrap_or(0),
            coord.store().total_bytes() / 1024,
            coord
                .samples()
                .last()
                .map_or(0, |s| s.dram_used_bytes / 1024),
        );
    }
    if let Some(path) = &a.samples_csv {
        let mut csv = String::from(
            "at_secs,hbm_usage,hbm_used_bytes,dram_bw_gbps,hbm_bw_gbps,k_low,k_high,records\n",
        );
        for s in &report.samples {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                s.at_secs,
                s.hbm_usage,
                s.hbm_used_bytes,
                s.dram_bw_gbps,
                s.hbm_bw_gbps,
                s.k_low,
                s.k_high,
                s.records
            ));
        }
        std::fs::write(path, csv)?;
        println!("  samples        : written to {path}");
    }
    if let Some(path) = &a.metrics_out {
        std::fs::write(path, obs.metrics.export_jsonl())?;
        println!("  metrics        : written to {path}");
    }
    if let Some(path) = &a.trace_out {
        // Span JSONL for `.jsonl` paths; Chrome trace (Perfetto) otherwise.
        let text = if path.ends_with(".jsonl") {
            obs.trace.export_jsonl()
        } else {
            obs.trace.export_chrome()
        };
        std::fs::write(path, text)?;
        println!(
            "  trace          : {} spans written to {path}",
            obs.trace.len()
        );
    }
    if let Some(path) = &a.incidents_out {
        let incidents = IncidentReport::new(obs.recorder.incidents());
        std::fs::write(path, incidents.to_jsonl())?;
        println!(
            "  incidents      : {} incident(s) written to {path}",
            incidents.len()
        );
    }
    Ok(())
}

/// Arguments of `sbx cluster`.
#[derive(Debug, Clone, PartialEq)]
struct ClusterArgs {
    name: String,
    shards: u32,
    slots: u32,
    bundles: usize,
    bundle_rows: usize,
    interval: u64,
    keys: u64,
    rate: u64,
    cores: u32,
    /// Zipf theta for the key draw; uniform keys when absent.
    skew: Option<f64>,
    /// Coordinated epoch to rescale at.
    rescale_at: Option<u64>,
    /// Grow/shrink target shard count.
    rescale_to: Option<u32>,
    /// Hot-shard rebalance tolerance (× mean load).
    rebalance: Option<f64>,
    link: LinkModel,
    metrics_out: Option<String>,
    /// Stitched cluster trace output: span JSONL for `.jsonl` paths,
    /// Chrome trace (Perfetto) otherwise.
    trace_out: Option<String>,
    /// Shard-health detector report (deterministic JSONL).
    health_out: Option<String>,
    /// Flight-recorder incident report (per-shard incidents plus the
    /// fabric-level health signals, deterministic JSONL).
    incidents_out: Option<String>,
}

impl Default for ClusterArgs {
    fn default() -> Self {
        ClusterArgs {
            name: String::new(),
            shards: 4,
            slots: 64,
            bundles: 40,
            bundle_rows: 20_000,
            interval: 5,
            // Millions of simulated users: the cluster's reason to exist.
            keys: 2_000_000,
            rate: 20_000_000,
            cores: 16,
            skew: None,
            rescale_at: None,
            rescale_to: None,
            rebalance: None,
            link: LinkModel::intra_rack_rdma(),
            metrics_out: None,
            trace_out: None,
            health_out: None,
            incidents_out: None,
        }
    }
}

fn parse_cluster_args(args: &[String]) -> Result<ClusterArgs, String> {
    let mut out = ClusterArgs {
        name: args.first().cloned().unwrap_or_default(),
        ..Default::default()
    };
    if !BENCHMARKS.contains(&out.name.as_str()) {
        return Err(format!("unknown benchmark '{}'", out.name));
    }
    if matches!(out.name.as_str(), "join" | "filter") {
        return Err("cluster supports single-stream benchmarks only".into());
    }
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--shards" => out.shards = value.parse().map_err(|_| "bad --shards")?,
            "--slots" => out.slots = value.parse().map_err(|_| "bad --slots")?,
            "--bundles" => out.bundles = value.parse().map_err(|_| "bad --bundles")?,
            "--bundle-rows" => {
                out.bundle_rows = value.parse().map_err(|_| "bad --bundle-rows")?;
            }
            "--interval" => out.interval = value.parse().map_err(|_| "bad --interval")?,
            "--keys" => out.keys = value.parse().map_err(|_| "bad --keys")?,
            "--rate" => out.rate = value.parse().map_err(|_| "bad --rate")?,
            "--cores" => out.cores = value.parse().map_err(|_| "bad --cores")?,
            "--skew" => out.skew = Some(value.parse().map_err(|_| "bad --skew")?),
            "--rescale-at" => {
                out.rescale_at = Some(value.parse().map_err(|_| "bad --rescale-at")?);
            }
            "--rescale-to" => {
                out.rescale_to = Some(value.parse().map_err(|_| "bad --rescale-to")?);
            }
            "--rebalance" => out.rebalance = Some(value.parse().map_err(|_| "bad --rebalance")?),
            "--metrics-out" => out.metrics_out = Some(value.clone()),
            "--trace-out" => out.trace_out = Some(value.clone()),
            "--health-out" => out.health_out = Some(value.clone()),
            "--incidents-out" => out.incidents_out = Some(value.clone()),
            "--link" => {
                out.link = match value.as_str() {
                    "rdma" => LinkModel::intra_rack_rdma(),
                    "eth" => LinkModel::cross_rack_10g(),
                    "unlimited" => LinkModel::unlimited(),
                    other => return Err(format!("unknown link '{other}'")),
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    if out.shards == 0 {
        return Err("--shards must be positive".into());
    }
    if !(1..=64).contains(&out.shards) {
        return Err("--shards must be in 1..=64".into());
    }
    if out.interval == 0 {
        return Err("--interval must be positive".into());
    }
    if out.rescale_to.is_some() && out.rebalance.is_some() {
        return Err("--rescale-to and --rebalance are mutually exclusive".into());
    }
    if out.rescale_at.is_some() && out.rescale_to.is_none() && out.rebalance.is_none() {
        return Err("--rescale-at needs --rescale-to or --rebalance".into());
    }
    if out.rescale_at.is_none() && (out.rescale_to.is_some() || out.rebalance.is_some()) {
        return Err("--rescale-to/--rebalance need --rescale-at".into());
    }
    Ok(out)
}

fn run_cluster(a: ClusterArgs) -> Result<(), Box<dyn std::error::Error>> {
    use std::sync::Arc;

    // Health detectors are pure functions of the cluster metrics, so
    // `--health-out` implies an active registry even without
    // `--metrics-out`; `--incidents-out` folds the fabric-level health
    // signals into the incident report, so it implies one too.
    let metrics = if a.metrics_out.is_some() || a.health_out.is_some() || a.incidents_out.is_some()
    {
        MetricsRegistry::active()
    } else {
        MetricsRegistry::noop()
    };
    // YSB aggregates per campaign, so the cluster must route records (and
    // shuffle state) by the ad→campaign projection, not the raw ad id.
    const YSB_CAMPAIGNS: u64 = 1_000;
    let (key_col, key_map): (usize, Option<streambox_hbm::cluster::KeyMap>) = if a.name == "ysb" {
        (2, Some(Arc::new(|ad| ad % YSB_CAMPAIGNS)))
    } else {
        (0, None)
    };
    let cfg = ClusterConfig {
        shards: a.shards,
        slots: a.slots,
        key_col,
        key_map,
        engine: RunConfig {
            machine: MachineConfig::knl(),
            cores: a.cores,
            // One worker thread per shard engine: exported HBM-placement
            // gauges must not depend on host-contention-sensitive KPA
            // placement interleaving, so same-seed runs export the same
            // bytes (see the fig10 tests for the same pinning).
            threads: 1,
            sender: SenderConfig {
                bundle_rows: a.bundle_rows,
                bundles_per_watermark: 10,
                nic: NicModel::rdma_40g(),
            },
            ..RunConfig::default()
        },
        link: a.link,
        metrics: metrics.clone(),
        trace: a.trace_out.is_some(),
        recorder: RecorderConfig::default(),
    };
    let plan = a.rescale_at.map(|at_epoch| ElasticPlan {
        at_epoch,
        retarget: match (a.rescale_to, a.rebalance) {
            (Some(n), _) => Retarget::Shards(n),
            (None, Some(tolerance)) => Retarget::Rebalance { tolerance },
            (None, None) => unreachable!("validated"),
        },
    });
    println!(
        "clustering '{}' across {} shards ({} slots, {} keys, link {}{})",
        a.name,
        a.shards,
        a.slots,
        a.keys,
        a.link.nic.name,
        a.skew.map_or(String::new(), |t| format!(", zipf {t}")),
    );
    let cluster = ShardedCluster::new(cfg);
    let name = a.name.clone();
    let mk_pipe = move || {
        if name == "ysb" {
            benchmarks::ysb(YSB_CAMPAIGNS)
        } else {
            pipeline_for(&name)
        }
    };
    let run = |mk_src: &dyn Fn() -> KvSource| match plan {
        Some(p) => cluster.run_elastic(mk_src, &mk_pipe, a.bundles, a.interval, p),
        None => cluster.run(mk_src, &mk_pipe, a.bundles, a.interval),
    };
    let report = match a.name.as_str() {
        "ysb" => {
            let mk_src = || YsbSource::new(1, a.keys, YSB_CAMPAIGNS, a.rate);
            match plan {
                Some(p) => cluster.run_elastic(mk_src, &mk_pipe, a.bundles, a.interval, p)?,
                None => cluster.run(mk_src, &mk_pipe, a.bundles, a.interval)?,
            }
        }
        "power-grid" => {
            let mk_src = || PowerGridSource::new(1, a.keys.max(1), 20, a.rate);
            match plan {
                Some(p) => cluster.run_elastic(mk_src, &mk_pipe, a.bundles, a.interval, p)?,
                None => cluster.run(mk_src, &mk_pipe, a.bundles, a.interval)?,
            }
        }
        _ => {
            let skew = a.skew;
            let keys = a.keys;
            let rate = a.rate;
            let mk_src = move || {
                let src = KvSource::new(1, keys, rate).with_value_range(1_000_000);
                match skew {
                    Some(theta) => src.with_zipf(theta),
                    None => src,
                }
            };
            run(&mk_src)?
        }
    };
    println!(
        "  cluster        : {:>10.2} M records/s ({} records, {} outputs, {:.4} s simulated)",
        report.throughput_rps() / 1e6,
        report.records_in,
        report.output_records,
        report.sim_secs
    );
    let shard_table = |label: &str, shards: &[streambox_hbm::cluster::ShardSummary]| {
        let total: u64 = shards.iter().map(|s| s.records_in).sum();
        println!("  {label}:");
        println!(
            "    {:>5} {:>12} {:>7} {:>10} {:>8} {:>9}",
            "shard", "records", "share%", "outputs", "crashes", "sim_secs"
        );
        for s in shards {
            println!(
                "    {:>5} {:>12} {:>7.2} {:>10} {:>8} {:>9.4}",
                s.shard,
                s.records_in,
                100.0 * s.records_in as f64 / total.max(1) as f64,
                s.output_records,
                s.crashes,
                s.sim_secs
            );
        }
    };
    if let Some(r) = &report.rescale {
        shard_table("shards before the cut", &report.phase1);
        println!(
            "  rescale        : {} -> {} shards at epoch {}, {} slots moved",
            r.from_shards,
            r.to_shards,
            r.at_epoch,
            r.moved_slots.len()
        );
        println!(
            "  shuffle        : {} KiB over links, {} KiB local, {:.6} s simulated",
            r.wire_bytes / 1024,
            r.local_bytes / 1024,
            r.shuffle_ns as f64 / 1e9
        );
        for (src, dst, bytes) in &r.links {
            println!("    link {src}->{dst}: {:>10} KiB", bytes / 1024);
        }
        shard_table("shards after the cut", &report.shards);
    } else {
        shard_table("shard table", &report.shards);
    }
    let hot_slots = {
        let mut slots: Vec<(usize, u64)> = report
            .slot_loads
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, l)| *l > 0)
            .collect();
        slots.sort_by_key(|&(slot, load)| (u64::MAX - load, slot));
        slots.truncate(5);
        slots
    };
    if !hot_slots.is_empty() {
        let hottest: Vec<String> = hot_slots
            .iter()
            .map(|(slot, load)| format!("{slot}:{load}"))
            .collect();
        println!("  hottest slots  : {}", hottest.join(", "));
    }
    if let Some(path) = &a.metrics_out {
        std::fs::write(path, metrics.export_jsonl())?;
        println!("  metrics        : written to {path}");
    }
    if let Some(path) = &a.trace_out {
        let trace = report.trace.as_ref().ok_or("cluster trace missing")?;
        // Span JSONL for `.jsonl` paths; Chrome trace (Perfetto) otherwise.
        let text = if path.ends_with(".jsonl") {
            trace.export_jsonl()
        } else {
            trace.export_chrome()
        };
        std::fs::write(path, text)?;
        println!(
            "  cluster trace  : {} stitched spans written to {path}",
            trace.spans.len()
        );
    }
    if let Some(path) = &a.health_out {
        let health = HealthReport::compute(&metrics.snapshot(), &HealthConfig::default());
        std::fs::write(path, health.to_jsonl())?;
        println!(
            "  health         : {} signal(s) written to {path}",
            health.signals.len()
        );
        print!("{}", health.render());
    }
    if let Some(path) = &a.incidents_out {
        // Per-shard recorder incidents first, then the fabric-level
        // health signals as evidence-free verdicts.
        let mut incidents = IncidentReport::new(report.incidents.clone());
        let health = HealthReport::compute(&metrics.snapshot(), &HealthConfig::default());
        incidents.extend_from_health(&health);
        std::fs::write(path, incidents.to_jsonl())?;
        println!(
            "  incidents      : {} incident(s) written to {path}",
            incidents.len()
        );
    }
    Ok(())
}

/// Arguments of `sbx report`.
#[derive(Debug, Clone, PartialEq)]
struct ReportArgs {
    /// Metrics JSONL export to rebuild the report from.
    path: String,
    /// Render the per-round memory-tier timeline.
    timeline: bool,
    /// Span JSONL export to run critical-path attribution over.
    critical_path: Option<String>,
    /// Stitched cluster-trace JSONL to run the distributed critical-path
    /// analysis over.
    cluster_critical_path: Option<String>,
    /// Re-evaluate the shard-health detectors from the metrics export.
    health: bool,
    /// Incident JSONL export to render the incident stories from.
    incidents: Option<String>,
    /// Top-k rows in the critical-path tables.
    top: usize,
}

fn parse_report_args(args: &[String]) -> Result<ReportArgs, String> {
    let mut out = ReportArgs {
        path: args
            .first()
            .cloned()
            .ok_or_else(|| "report needs a metrics.jsonl path".to_owned())?,
        timeline: false,
        critical_path: None,
        cluster_critical_path: None,
        health: false,
        incidents: None,
        top: 5,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--timeline" => {
                out.timeline = true;
                i += 1;
            }
            "--health" => {
                out.health = true;
                i += 1;
            }
            "--critical-path" => {
                out.critical_path = Some(
                    args.get(i + 1)
                        .ok_or("--critical-path needs a spans.jsonl path")?
                        .clone(),
                );
                i += 2;
            }
            "--cluster-critical-path" => {
                out.cluster_critical_path = Some(
                    args.get(i + 1)
                        .ok_or("--cluster-critical-path needs a stitched spans.jsonl path")?
                        .clone(),
                );
                i += 2;
            }
            "--incidents" => {
                out.incidents = Some(
                    args.get(i + 1)
                        .ok_or("--incidents needs an incidents.jsonl path")?
                        .clone(),
                );
                i += 2;
            }
            "--top" => {
                out.top = args
                    .get(i + 1)
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|_| "bad --top")?;
                i += 2;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

/// `sbx report`: rebuilds a run summary and the Figure-10 time series
/// purely from a metrics JSONL export; optionally renders the memory-tier
/// timeline and span critical-path attribution.
fn run_report(a: &ReportArgs) -> Result<(), Box<dyn std::error::Error>> {
    let path = a.path.as_str();
    let text = std::fs::read_to_string(path)?;
    let dump = MetricsDump::parse_jsonl(&text)?;
    println!("report from {path}");
    let c = |name: &str| dump.counter(name).unwrap_or(0);
    println!(
        "  input          : {:>10} records in {} bundles",
        c("engine.records_in"),
        c("engine.bundles_in")
    );
    println!(
        "  windows        : {:>10} closed, {} output records",
        c("engine.windows_closed"),
        c("engine.output_records")
    );
    let gmax = |name: &str| dump.gauge(name).map_or(0.0, |g| g.max);
    println!(
        "  bandwidth peak : {:>10.1} GB/s HBM, {:.1} GB/s DRAM",
        gmax("engine.hbm_bw_gbps"),
        gmax("engine.dram_bw_gbps")
    );
    println!(
        "  HBM peak used  : {:>10.0} KiB (round-boundary peak)",
        gmax("engine.hbm_used_bytes") / 1024.0
    );
    if let Some(h) = dump.histogram("engine.output_delay_secs") {
        if h.snapshot.count == 0 {
            // No delay observations: zeros would read as "instant".
            println!("  output delay   : {:>10} (no windows closed)", "n/a");
            println!("  delay quantiles: {:>10}", "n/a");
        } else {
            println!(
                "  output delay   : {:>10.4} s max ({:.4} s avg, {} windows)",
                h.snapshot.max,
                h.snapshot.mean(),
                h.snapshot.count
            );
            let [p50, p95, p99] = h.snapshot.percentiles();
            println!("  delay quantiles: {p50:>10.4} s p50, {p95:.4} s p95, {p99:.4} s p99");
        }
    }
    let ops: Vec<&(String, u64)> = dump
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("op.") && name.ends_with(".invocations"))
        .collect();
    if !ops.is_empty() {
        println!("  operators:");
        for (name, invocations) in ops {
            let stem = name.trim_end_matches("invocations");
            println!(
                "    {:<28} {:>8} invocations, {:>10} records in, {:>10} out",
                name.trim_start_matches("op.")
                    .trim_end_matches(".invocations"),
                invocations,
                c(&format!("{stem}records_in")),
                c(&format!("{stem}records_out"))
            );
        }
    }
    let samples = round_samples_from_dump(&dump);
    if samples.is_empty() {
        println!("  no 'engine.round' series: Figure-10 table unavailable");
    } else {
        println!("  figure-10 series ({} rounds):", samples.len());
        println!(
            "    {:>8} {:>9} {:>12} {:>8} {:>8} {:>6} {:>6} {:>10}",
            "at_secs", "hbm_use", "hbm_KiB", "dram_bw", "hbm_bw", "k_low", "k_high", "records"
        );
        for s in &samples {
            println!(
                "    {:>8.3} {:>9.3} {:>12} {:>8.1} {:>8.1} {:>6.2} {:>6.2} {:>10}",
                s.at_secs,
                s.hbm_usage,
                s.hbm_used_bytes / 1024,
                s.dram_bw_gbps,
                s.hbm_bw_gbps,
                s.k_low,
                s.k_high,
                s.records
            );
        }
    }
    cluster_report(&dump);
    if a.timeline {
        print!("{}", Timeline::from_dump(&dump).render());
    }
    if let Some(spans_path) = &a.critical_path {
        let spans_text = std::fs::read_to_string(spans_path)?;
        let spans = parse_spans_jsonl(&spans_text)?;
        println!("critical path from {spans_path} ({} spans)", spans.len());
        print!(
            "{}",
            CriticalPath::compute(&spans).render(a.top, Some(&dump))
        );
    }
    if let Some(spans_path) = &a.cluster_critical_path {
        let spans_text = std::fs::read_to_string(spans_path)?;
        let spans = parse_cluster_spans_jsonl(&spans_text)?;
        let trace = ClusterTrace { spans };
        println!(
            "distributed critical path from {spans_path} ({} spans)",
            trace.spans.len()
        );
        print!("{}", ClusterCriticalPath::compute(&trace).render(a.top));
    }
    if a.health {
        print!(
            "{}",
            HealthReport::compute(&dump, &HealthConfig::default()).render()
        );
    }
    if let Some(incidents_path) = &a.incidents {
        let incidents_text = std::fs::read_to_string(incidents_path)?;
        let incidents = IncidentReport::parse_jsonl(&incidents_text)?;
        println!(
            "incidents from {incidents_path} ({} incident(s))",
            incidents.len()
        );
        print!("{}", incidents.render());
    }
    Ok(())
}

/// Renders the cluster tier's shard occupancy/skew table and per-link
/// utilization, derived purely from exported `cluster.*` counters (absent
/// for single-engine runs). Deterministic: same-seed runs export the same
/// bytes, so this section renders identically.
fn cluster_report(dump: &MetricsDump) {
    let shards = dump.gauge("cluster.shards").map_or(0.0, |g| g.value) as u32;
    if shards == 0 {
        return;
    }
    let c = |name: &str| dump.counter(name).unwrap_or(0);
    let slots = dump.gauge("cluster.slots").map_or(0.0, |g| g.value) as u32;
    println!("  cluster        : {shards} shards over {slots} slots");
    let per_shard: Vec<(u32, u64, u64, u64)> = (0..shards)
        .map(|s| {
            (
                s,
                c(&format!("cluster.shard{s}.records_in")),
                c(&format!("cluster.shard{s}.output_records")),
                c(&format!("cluster.shard{s}.crashes")),
            )
        })
        .collect();
    let total: u64 = per_shard.iter().map(|(_, r, _, _)| r).sum();
    let max = per_shard.iter().map(|(_, r, _, _)| *r).max().unwrap_or(0);
    println!(
        "    {:>5} {:>12} {:>7} {:>10} {:>8}",
        "shard", "records", "share%", "outputs", "crashes"
    );
    for (s, records, outputs, crashes) in &per_shard {
        println!(
            "    {:>5} {:>12} {:>7.2} {:>10} {:>8}",
            s,
            records,
            100.0 * *records as f64 / total.max(1) as f64,
            outputs,
            crashes
        );
    }
    let mean = total as f64 / f64::from(shards.max(1));
    println!(
        "    skew           : max/mean {:.3} (hot shard {:.2}% of traffic)",
        max as f64 / mean.max(1.0),
        100.0 * max as f64 / total.max(1) as f64
    );
    // Per-shard output-delay quantiles and straggler scores, from the
    // adopted per-shard engine histograms and round series. Same-seed
    // runs export the same bytes, so the table renders identically.
    let last_at = |s: u32| -> Option<f64> {
        let name = format!("cluster.shard{s}.engine.engine.round");
        let series = dump.series.iter().find(|d| d.name == name)?;
        let col = series.field_index("at_secs")?;
        series.rows.last().and_then(|row| row.get(col).copied())
    };
    let delays: Vec<(u32, [f64; 3], u64, Option<f64>)> = (0..shards)
        .filter_map(|s| {
            let h = dump.histogram(&format!("cluster.shard{s}.engine.engine.output_delay_secs"))?;
            Some((s, h.snapshot.percentiles(), h.snapshot.count, last_at(s)))
        })
        .collect();
    if !delays.is_empty() {
        let finish_mean = {
            let finished: Vec<f64> = delays.iter().filter_map(|(_, _, _, at)| *at).collect();
            if finished.is_empty() {
                0.0
            } else {
                finished.iter().sum::<f64>() / finished.len() as f64
            }
        };
        println!(
            "    {:>5} {:>10} {:>10} {:>10} {:>8} {:>10}",
            "shard", "p50_delay", "p95_delay", "p99_delay", "windows", "straggler"
        );
        for (s, [p50, p95, p99], count, at) in &delays {
            let score = match at {
                Some(at) if finish_mean > 0.0 => format!("{:.2}x", at / finish_mean),
                _ => String::from("-"),
            };
            println!(
                "    {:>5} {:>9.4}s {:>9.4}s {:>9.4}s {:>8} {:>10}",
                s, p50, p95, p99, count, score
            );
        }
    }
    // Hottest slots, from the per-slot routing counters.
    let mut hot: Vec<(u32, u64)> = (0..slots)
        .map(|slot| (slot, c(&format!("cluster.slot{slot}.records"))))
        .filter(|(_, l)| *l > 0)
        .collect();
    hot.sort_by_key(|&(slot, load)| (u64::MAX - load, slot));
    hot.truncate(5);
    if !hot.is_empty() {
        let rendered: Vec<String> = hot
            .iter()
            .map(|(slot, load)| format!("{slot}:{load}"))
            .collect();
        println!("    hottest slots  : {}", rendered.join(", "));
    }
    let wire = c("cluster.shuffle.wire_bytes");
    if c("cluster.rescale.to_shards") > 0 {
        println!(
            "    rescale        : {} -> {} shards at epoch {}, {} slots moved",
            c("cluster.rescale.from_shards"),
            c("cluster.rescale.to_shards"),
            c("cluster.rescale.at_epoch"),
            c("cluster.rescale.moved_slots")
        );
        println!(
            "    shuffle        : {} KiB over links, {} KiB local, {:.6} s simulated",
            wire / 1024,
            c("cluster.shuffle.local_bytes") / 1024,
            c("cluster.shuffle.ns") as f64 / 1e9
        );
        // Per-link utilization rows: every exported cluster.link.S.D.bytes.
        for (name, bytes) in &dump.counters {
            let Some(rest) = name.strip_prefix("cluster.link.") else {
                continue;
            };
            let Some(pair) = rest.strip_suffix(".bytes") else {
                continue;
            };
            let Some((src, dst)) = pair.split_once('.') else {
                continue;
            };
            println!(
                "    link {src}->{dst}      : {:>10} KiB ({:.1}% of shuffle)",
                bytes / 1024,
                100.0 * *bytes as f64 / wire.max(1) as f64
            );
        }
    }
}

/// Crash-injected run followed by recovery and an exactly-once check
/// against a fault-free oracle over the same deterministic stream.
fn recover_demo<S: Source>(
    cfg: &RunConfig,
    mk_src: impl Fn() -> S,
    mk_pipe: impl Fn() -> Pipeline,
    bundles: usize,
    interval: u64,
    crash_after: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut oracle = CheckpointCoordinator::new();
    let base = run_with_recovery(cfg, &mk_src, &mk_pipe, bundles, interval, &mut oracle)?;
    let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(crash_after));
    let out = run_with_recovery(cfg, &mk_src, &mk_pipe, bundles, interval, &mut coord)?;
    println!(
        "  crash+recover  : {} crash(es), resumed from epoch(s) {:?}",
        out.crashes, out.resumed_epochs
    );
    println!(
        "  checkpoints    : {} committed, {} KiB store",
        coord.samples().len(),
        coord.store().total_bytes() / 1024
    );
    println!(
        "  outputs        : {} committed records vs {} fault-free",
        coord.committed().len(),
        oracle.committed().len()
    );
    if coord.committed() != oracle.committed()
        || out.report.records_in != base.report.records_in
        || out.report.output_records != base.report.output_records
    {
        return Err("exactly-once VIOLATED: recovered outputs diverge from fault-free run".into());
    }
    println!("  exactly-once   : VERIFIED (committed outputs byte-identical to fault-free run)");
    Ok(())
}

fn run_recover(a: BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    if matches!(a.name.as_str(), "join" | "filter") {
        return Err("recover supports single-stream benchmarks only".into());
    }
    let interval = a.checkpoint_interval.unwrap_or(10);
    let crash_after = a.crash_after.unwrap_or(a.bundles as u64 / 2);
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores: a.cores,
        mode: a.mode,
        sender: SenderConfig {
            bundle_rows: a.bundle_rows,
            bundles_per_watermark: 10,
            nic: a.nic,
        },
        ..RunConfig::default()
    };
    println!(
        "recovering '{}': crash after bundle {crash_after}, checkpoint every {interval} bundles",
        a.name
    );
    let name = a.name.clone();
    // Validate the grouping/benchmark combination once, up front.
    grouped_pipeline_for(&name, a.grouping)?;
    let mk_pipe = || grouped_pipeline_for(&name, a.grouping).expect("validated above");
    match a.name.as_str() {
        "power-grid" => recover_demo(
            &cfg,
            || PowerGridSource::new(1, 100, 20, a.rate),
            mk_pipe,
            a.bundles,
            interval,
            crash_after,
        ),
        "ysb" => recover_demo(
            &cfg,
            || YsbSource::new(1, 10_000, 1_000, a.rate),
            mk_pipe,
            a.bundles,
            interval,
            crash_after,
        ),
        _ => recover_demo(
            &cfg,
            || KvSource::new(1, a.keys, a.rate).with_value_range(1_000_000),
            mk_pipe,
            a.bundles,
            interval,
            crash_after,
        ),
    }
}

fn run_figure(which: &str) -> Result<(), String> {
    match which {
        "2" => sbx_bench::fig2::run(),
        "7" => sbx_bench::fig7::run(),
        "8" => sbx_bench::fig8::run(),
        "9" => sbx_bench::fig9::run(),
        "10" => sbx_bench::fig10::run(),
        "11" => sbx_bench::fig11::run(),
        "ablation" => sbx_bench::ablation::run(),
        other => return Err(format!("unknown figure '{other}'")),
    };
    Ok(())
}

fn print_machines() {
    for m in [MachineConfig::knl(), MachineConfig::x56()] {
        println!("{}", m.name);
        println!("  cores : {} @ {} GHz", m.cores, m.core_ghz);
        if m.has_hbm {
            println!(
                "  HBM   : {} GiB, {:.0} GB/s, {:.0} ns",
                m.hbm.capacity_bytes >> 30,
                m.hbm.bandwidth_bytes_per_sec / 1e9,
                m.hbm.latency_ns
            );
        }
        println!(
            "  DRAM  : {} GiB, {:.0} GB/s, {:.0} ns",
            m.dram.capacity_bytes >> 30,
            m.dram.bandwidth_bytes_per_sec / 1e9,
            m.dram.latency_ns
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench") => match parse_bench_args(&args[1..]) {
            Ok(a) => match run_bench(a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        Some("recover") => match parse_bench_args(&args[1..]) {
            Ok(a) => match run_recover(a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        Some("cluster") => match parse_cluster_args(&args[1..]) {
            Ok(a) => match run_cluster(a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        Some("report") => match parse_report_args(&args[1..]) {
            Ok(a) => match run_report(&a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        Some("figure") => match args.get(1) {
            Some(which) => match run_figure(which) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage()
                }
            },
            None => usage(),
        },
        Some("machines") => {
            print_machines();
            ExitCode::SUCCESS
        }
        Some("list") => {
            println!("{}", BENCHMARKS.join("\n"));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_bench_args(&s(&[
            "topk",
            "--cores",
            "16",
            "--bundles",
            "8",
            "--bundle-rows",
            "500",
            "--nic",
            "eth",
            "--mode",
            "dram",
            "--keys",
            "42",
            "--rate",
            "1000",
        ]))
        .unwrap();
        assert_eq!(a.cores, 16);
        assert_eq!(a.bundles, 8);
        assert_eq!(a.bundle_rows, 500);
        assert_eq!(a.mode, EngineMode::DramOnly);
        assert_eq!(a.keys, 42);
        assert_eq!(a.rate, 1000);
        assert_eq!(a.nic.name, NicModel::ethernet_10g().name);
    }

    #[test]
    fn parses_samples_csv_flag() {
        let a = parse_bench_args(&s(&["sum", "--samples-csv", "/tmp/x.csv"])).unwrap();
        assert_eq!(a.samples_csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn parses_observability_flags() {
        let a = parse_bench_args(&s(&[
            "sum",
            "--metrics-out",
            "/tmp/m.jsonl",
            "--trace-out",
            "/tmp/t.json",
        ]))
        .unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.jsonl"));
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/t.json"));
        let plain = parse_bench_args(&s(&["sum"])).unwrap();
        assert!(plain.metrics_out.is_none() && plain.trace_out.is_none());
        assert!(parse_bench_args(&s(&["sum", "--metrics-out"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_bench_args(&s(&["nope"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--cores"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--nic", "carrier-pigeon"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--mode", "quantum"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--wat", "1"])).is_err());
    }

    #[test]
    fn parses_grouping_flag() {
        let a = parse_bench_args(&s(&["ysb", "--grouping", "adaptive"])).unwrap();
        assert_eq!(a.grouping, GroupingSpec::Adaptive);
        let d = parse_bench_args(&s(&["ysb"])).unwrap();
        assert_eq!(d.grouping, GroupingSpec::SortMerge);
        for g in ["sort", "hash", "row"] {
            assert!(parse_bench_args(&s(&["sum", "--grouping", g])).is_ok());
        }
        assert!(parse_bench_args(&s(&["sum", "--grouping", "btree"])).is_err());
    }

    #[test]
    fn grouping_is_wired_for_keyed_agg_benchmarks() {
        for g in [GroupingSpec::Hash, GroupingSpec::Adaptive] {
            assert!(grouped_pipeline_for("sum", g).is_ok());
            assert!(grouped_pipeline_for("ysb", g).is_ok());
            assert!(grouped_pipeline_for("join", g).is_err());
        }
        // The default backend keeps every benchmark available.
        for name in BENCHMARKS {
            assert!(grouped_pipeline_for(name, GroupingSpec::SortMerge).is_ok());
        }
    }

    #[test]
    fn parses_checkpoint_flags() {
        let a = parse_bench_args(&s(&[
            "topk",
            "--checkpoint-interval",
            "7",
            "--crash-after-bundles",
            "12",
        ]))
        .unwrap();
        assert_eq!(a.checkpoint_interval, Some(7));
        assert_eq!(a.crash_after, Some(12));
        assert!(parse_bench_args(&s(&["topk", "--checkpoint-interval", "0"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--checkpoint-interval", "x"])).is_err());
    }

    #[test]
    fn parses_report_flags() {
        let a = parse_report_args(&s(&[
            "m.jsonl",
            "--timeline",
            "--critical-path",
            "t.jsonl",
            "--top",
            "3",
        ]))
        .unwrap();
        assert_eq!(a.path, "m.jsonl");
        assert!(a.timeline);
        assert_eq!(a.critical_path.as_deref(), Some("t.jsonl"));
        assert_eq!(a.top, 3);
        let plain = parse_report_args(&s(&["m.jsonl"])).unwrap();
        assert!(!plain.timeline && plain.critical_path.is_none());
        assert_eq!(plain.top, 5);
        assert!(parse_report_args(&s(&[])).is_err());
        assert!(parse_report_args(&s(&["m.jsonl", "--critical-path"])).is_err());
        assert!(parse_report_args(&s(&["m.jsonl", "--top", "x"])).is_err());
        assert!(parse_report_args(&s(&["m.jsonl", "--wat"])).is_err());
    }

    #[test]
    fn parses_cluster_report_flags() {
        let a = parse_report_args(&s(&[
            "m.jsonl",
            "--cluster-critical-path",
            "stitched.jsonl",
            "--health",
        ]))
        .unwrap();
        assert_eq!(a.cluster_critical_path.as_deref(), Some("stitched.jsonl"));
        assert!(a.health);
        let plain = parse_report_args(&s(&["m.jsonl"])).unwrap();
        assert!(plain.cluster_critical_path.is_none() && !plain.health);
        assert!(parse_report_args(&s(&["m.jsonl", "--cluster-critical-path"])).is_err());
    }

    #[test]
    fn parses_cluster_flags() {
        let a = parse_cluster_args(&s(&[
            "ysb",
            "--shards",
            "8",
            "--slots",
            "128",
            "--rescale-at",
            "3",
            "--rescale-to",
            "16",
            "--skew",
            "1.2",
            "--link",
            "eth",
            "--metrics-out",
            "/tmp/c.jsonl",
        ]))
        .unwrap();
        assert_eq!(a.name, "ysb");
        assert_eq!(a.shards, 8);
        assert_eq!(a.slots, 128);
        assert_eq!(a.rescale_at, Some(3));
        assert_eq!(a.rescale_to, Some(16));
        assert_eq!(a.skew, Some(1.2));
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/c.jsonl"));
        let plain = parse_cluster_args(&s(&["sum"])).unwrap();
        assert_eq!(plain.shards, 4);
        assert!(plain.rescale_at.is_none() && plain.skew.is_none());
        assert!(plain.trace_out.is_none() && plain.health_out.is_none());
    }

    #[test]
    fn parses_cluster_observability_flags() {
        let a = parse_cluster_args(&s(&[
            "ysb",
            "--trace-out",
            "/tmp/trace.jsonl",
            "--health-out",
            "/tmp/health.jsonl",
        ]))
        .unwrap();
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/trace.jsonl"));
        assert_eq!(a.health_out.as_deref(), Some("/tmp/health.jsonl"));
        assert!(parse_cluster_args(&s(&["ysb", "--trace-out"])).is_err());
        assert!(parse_cluster_args(&s(&["ysb", "--health-out"])).is_err());
    }

    #[test]
    fn rejects_inconsistent_cluster_flags() {
        // A retarget needs a cut epoch, and vice versa.
        assert!(parse_cluster_args(&s(&["sum", "--rescale-to", "8"])).is_err());
        assert!(parse_cluster_args(&s(&["sum", "--rescale-at", "2"])).is_err());
        // Rescale and rebalance are mutually exclusive retargets.
        assert!(parse_cluster_args(&s(&[
            "sum",
            "--rescale-at",
            "2",
            "--rescale-to",
            "8",
            "--rebalance",
            "1.25",
        ]))
        .is_err());
        assert!(parse_cluster_args(&s(&["sum", "--shards", "0"])).is_err());
        assert!(parse_cluster_args(&s(&["join", "--shards", "2"])).is_err());
        assert!(parse_cluster_args(&s(&["sum", "--link", "pigeon"])).is_err());
        assert!(parse_cluster_args(&s(&["sum", "--wat"])).is_err());
    }

    #[test]
    fn all_listed_benchmarks_have_pipelines() {
        for name in BENCHMARKS {
            let p = pipeline_for(name);
            assert!(!p.is_empty(), "{name}");
        }
    }
}

//! Ok fixture for `no-adhoc-io`: progress goes through the metrics
//! registry, human-readable text is built with `fmt::Write`, and the one
//! genuine reporting site carries a justified marker.

use std::fmt::Write as _;

fn report_progress(metrics: &MetricsRegistry, done: u64) {
    metrics.counter("ingress.bundles_in").add(done);
}

fn render_table(rows: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (name, value) in rows {
        writeln!(out, "{name}: {value}").ok();
    }
    out
}

fn print_final_summary(text: &str) {
    println!("{text}"); // sbx-lint: allow(no-adhoc-io, CLI summary line)
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_freely_in_tests() {
        println!("test output is exempt");
    }
}

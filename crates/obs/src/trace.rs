//! Span-based tracing of the simulated task graph.
//!
//! Each operator invocation records one [`Span`]: its identity (shared with
//! the engine's `TaskSpec` task ids, so a trace lines up with a recorded
//! task graph), its parent along the operator chain, and its *simulated*
//! start/duration in nanoseconds. Because every timestamp comes from the
//! simulated clock, two runs with the same seed export byte-identical
//! traces.
//!
//! Two export formats:
//! - JSONL: one flat object per span, in record order.
//! - Chrome trace (`{"traceEvents":[...]}` with `"X"` complete events),
//!   loadable in Perfetto or `chrome://tracing`. Lanes (`tid`) are operator
//!   indices, so each pipeline stage renders as its own track.

use std::sync::{Arc, Mutex};

use crate::json::{fmt_f64, write_str};
use crate::sync::lock;

/// One operator invocation in the simulated task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Task identity; shared with the engine's `TaskSpec` ids.
    pub id: u64,
    /// Parent span along the operator chain, if any.
    pub parent: Option<u64>,
    /// Operator name (e.g. `window_into`).
    pub name: &'static str,
    /// Category: `task`, `watermark`, `barrier`, or `close`.
    pub cat: &'static str,
    /// Display lane: the operator's index in the pipeline.
    pub lane: u64,
    /// Watermark round (0-based) the invocation ran in. The engine closes a
    /// round per watermark, so this aligns spans with the per-round metric
    /// series (`engine.round` / `engine.tier`).
    pub round: u64,
    /// Checkpoint epoch the invocation ran in (0 before the first barrier).
    /// Cluster traces use this to cut per-epoch critical paths and to align
    /// spans with the rescale cut point.
    pub epoch: u64,
    /// Simulated start time in nanoseconds.
    pub start_ns: u64,
    /// Simulated duration in nanoseconds (from the cost model).
    pub dur_ns: u64,
    /// Records entering this invocation.
    pub records_in: u64,
    /// Records produced by this invocation.
    pub records_out: u64,
}

#[derive(Debug, Default)]
struct TraceInner {
    spans: Mutex<Vec<Span>>,
}

/// Collects spans for one run. The default handle is a no-op.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    inner: Option<Arc<TraceInner>>,
}

impl TraceCollector {
    /// An inert collector: recording does nothing and allocates nothing.
    pub fn noop() -> Self {
        TraceCollector { inner: None }
    }

    /// An active collector.
    pub fn active() -> Self {
        TraceCollector {
            inner: Some(Arc::new(TraceInner::default())),
        }
    }

    /// True if spans are being collected. Instrumented code should check
    /// this before building a [`Span`].
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one span (dropped by no-op collectors).
    pub fn record(&self, span: Span) {
        if let Some(inner) = &self.inner {
            lock(&inner.spans).push(span);
        }
    }

    /// Discards all recorded spans, keeping the collector active. Recovery
    /// loops call this when an attempt crashes so only the surviving
    /// attempt's spans remain in the export.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            lock(&inner.spans).clear();
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| lock(&i.spans).len())
    }

    /// True if no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all spans in record order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| lock(&i.spans).clone())
    }

    /// Exports spans as JSONL, one flat object per line, in record order.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            out.push_str(&format!("{{\"type\":\"span\",\"id\":{}", s.id));
            if let Some(parent) = s.parent {
                out.push_str(&format!(",\"parent\":{parent}"));
            }
            out.push_str(",\"name\":");
            write_str(s.name, &mut out);
            out.push_str(",\"cat\":");
            write_str(s.cat, &mut out);
            out.push_str(&format!(
                ",\"lane\":{},\"round\":{},\"epoch\":{},\"start_ns\":{},\"dur_ns\":{},\"records_in\":{},\"records_out\":{}}}\n",
                s.lane, s.round, s.epoch, s.start_ns, s.dur_ns, s.records_in, s.records_out
            ));
        }
        out
    }

    /// Exports spans in Chrome trace format (Perfetto / `chrome://tracing`).
    ///
    /// Each span becomes an `"X"` complete event; `ts`/`dur` are simulated
    /// microseconds, `tid` is the operator lane.
    pub fn export_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let spans = self.spans();
        for (i, s) in spans.iter().enumerate() {
            out.push_str("{\"name\":");
            write_str(s.name, &mut out);
            out.push_str(",\"cat\":");
            write_str(s.cat, &mut out);
            out.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"span\":{}",
                fmt_f64(s.start_ns as f64 / 1000.0),
                fmt_f64(s.dur_ns as f64 / 1000.0),
                s.lane,
                s.id
            ));
            if let Some(parent) = s.parent {
                out.push_str(&format!(",\"parent\":{parent}"));
            }
            out.push_str(&format!(
                ",\"round\":{},\"epoch\":{},\"records_in\":{},\"records_out\":{}}}}}",
                s.round, s.epoch, s.records_in, s.records_out
            ));
            if i + 1 < spans.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_flat_object;

    fn sample() -> Span {
        Span {
            id: 7,
            parent: Some(3),
            name: "window_into",
            cat: "task",
            lane: 2,
            round: 1,
            epoch: 1,
            start_ns: 1_500,
            dur_ns: 250,
            records_in: 100,
            records_out: 90,
        }
    }

    #[test]
    fn noop_collector_is_inert() {
        let t = TraceCollector::noop();
        assert!(!t.is_enabled());
        t.record(sample());
        assert!(t.is_empty());
        assert!(t.export_jsonl().is_empty());
    }

    #[test]
    fn clear_discards_spans_but_stays_active() {
        let t = TraceCollector::active();
        t.record(sample());
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
        t.record(sample());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn jsonl_lines_are_flat_objects() {
        let t = TraceCollector::active();
        t.record(sample());
        t.record(Span {
            parent: None,
            ..sample()
        });
        let text = t.export_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let pairs = parse_flat_object(lines[0]).unwrap();
        let get = |k: &str| {
            pairs
                .iter()
                .find(|(key, _)| key == k)
                .and_then(|(_, v)| v.as_f64())
        };
        assert_eq!(get("id"), Some(7.0));
        assert_eq!(get("parent"), Some(3.0));
        assert_eq!(get("round"), Some(1.0));
        assert_eq!(get("start_ns"), Some(1500.0));
        // Root span omits the parent key entirely.
        assert!(!lines[1].contains("parent"));
    }

    #[test]
    fn chrome_export_has_complete_events_in_microseconds() {
        let t = TraceCollector::active();
        t.record(sample());
        let text = t.export_chrome();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":1.5"));
        assert!(text.contains("\"dur\":0.25"));
        assert!(text.contains("\"tid\":2"));
    }
}

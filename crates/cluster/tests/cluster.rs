//! End-to-end properties of the sharded cluster tier.
//!
//! The invariants under test, across seeds, shard counts, and crash
//! points (ISSUE: cluster property suite):
//!
//! * **Route totality** — every key is owned by exactly one shard under
//!   every table the cluster can produce (uniform, rescaled, rebalanced).
//! * **Topology transparency** — for commutative aggregations the
//!   canonical committed output multiset is byte-identical across shard
//!   counts (1, 2, 4, 8, 16), with or without a mid-run rescale.
//! * **Exactly-once** — committed outputs match a fault-free oracle even
//!   when crashes land before, inside, or after the rescale epoch.

use std::sync::Arc;

use sbx_checkpoint::CrashPlan;
use sbx_cluster::{
    ClusterConfig, ClusterCrash, ClusterError, ClusterRunReport, ElasticPlan, RescalePhase,
    Retarget, RouteTable, ShardedCluster,
};
use sbx_engine::{benchmarks, CrashPhase, RunConfig};
use sbx_ingress::{KvSource, NicModel, SenderConfig, YsbSource};
use sbx_prng::SbxRng;

const BUNDLES: usize = 20;
const INTERVAL: u64 = 3;
const CUT: u64 = 2;

fn cluster_cfg(shards: u32) -> ClusterConfig {
    ClusterConfig {
        shards,
        engine: RunConfig {
            cores: 16,
            sender: SenderConfig {
                bundle_rows: 1_000,
                bundles_per_watermark: 5,
                nic: NicModel::rdma_40g(),
            },
            ..RunConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn kv(seed: u64) -> impl Fn() -> KvSource {
    move || KvSource::new(seed, 500, 100_000).with_value_range(1_000)
}

fn run_shards(seed: u64, shards: u32) -> ClusterRunReport {
    ShardedCluster::new(cluster_cfg(shards))
        .run(kv(seed), benchmarks::sum_per_key, BUNDLES, INTERVAL)
        .expect("cluster run")
}

#[test]
fn outputs_bit_identical_across_shard_counts() {
    for seed in [7u64, 21] {
        let oracle = run_shards(seed, 1);
        assert!(oracle.output_records > 0, "oracle must produce outputs");
        for shards in [2u32, 4, 8, 16] {
            let run = run_shards(seed, shards);
            assert_eq!(
                run.canonical_outputs(),
                oracle.canonical_outputs(),
                "{shards} shards must emit the oracle multiset (seed {seed})"
            );
            assert_eq!(
                run.records_in, oracle.records_in,
                "no record lost or duplicated"
            );
            let routed: u64 = run.slot_loads.iter().sum();
            assert_eq!(routed, run.records_in, "slot stats count each record once");
        }
    }
}

#[test]
fn static_cluster_crash_is_exactly_once() {
    let oracle = run_shards(7, 4);
    let crashed = ShardedCluster::new(cluster_cfg(4))
        .run_faulty(
            kv(7),
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
            None,
            Some(ClusterCrash {
                shard: 1,
                phase: RescalePhase::BeforeCut,
                plan: CrashPlan::AfterBundles(11),
            }),
        )
        .expect("crashed cluster run");
    assert_eq!(crashed.shards[1].crashes, 1, "the crash fired");
    assert_eq!(crashed.canonical_outputs(), oracle.canonical_outputs());
    assert_eq!(crashed.records_in, oracle.records_in);
}

#[test]
fn grow_rescale_matches_fault_free_oracle() {
    let oracle = run_shards(7, 4);
    let grown = ShardedCluster::new(cluster_cfg(4))
        .run_elastic(
            kv(7),
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: CUT,
                retarget: Retarget::Shards(8),
            },
        )
        .expect("grow rescale");
    let rescale = grown.rescale.as_ref().expect("rescale happened");
    assert_eq!(rescale.from_shards, 4);
    assert_eq!(rescale.to_shards, 8);
    assert!(!rescale.moved_slots.is_empty(), "growing moves slots");
    assert!(rescale.wire_bytes > 0, "moved state crosses links");
    assert!(rescale.shuffle_ns > 0, "the shuffle costs simulated time");
    assert_eq!(grown.phase1.len(), 4);
    assert_eq!(grown.shards.len(), 8);
    assert_eq!(grown.canonical_outputs(), oracle.canonical_outputs());
    assert_eq!(grown.records_in, oracle.records_in);
    // Phase-2 clocks carry phase 1 plus the shuffle, so the elastic run's
    // critical path is strictly positive and includes the shuffle cost.
    assert!(grown.sim_secs * 1e9 > rescale.shuffle_ns as f64);
}

#[test]
fn shrink_rescale_matches_fault_free_oracle() {
    let oracle = run_shards(21, 8);
    let shrunk = ShardedCluster::new(cluster_cfg(8))
        .run_elastic(
            kv(21),
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: CUT,
                retarget: Retarget::Shards(4),
            },
        )
        .expect("shrink rescale");
    let rescale = shrunk.rescale.as_ref().expect("rescale happened");
    assert_eq!((rescale.from_shards, rescale.to_shards), (8, 4));
    assert_eq!(shrunk.phase1.len(), 8);
    assert_eq!(shrunk.shards.len(), 4);
    assert!(rescale.wire_bytes > 0);
    assert_eq!(shrunk.canonical_outputs(), oracle.canonical_outputs());
    assert_eq!(shrunk.records_in, oracle.records_in);
}

#[test]
fn crashes_during_the_rescale_epoch_compose_with_the_cut() {
    let oracle = run_shards(7, 4);
    let crashes: &[(RescalePhase, CrashPlan)] = &[
        // Mid-phase-1 ingest crash, well before the cut.
        (RescalePhase::BeforeCut, CrashPlan::AfterBundles(4)),
        // Crash at the cut barrier's alignment: inside the rescale epoch.
        (
            RescalePhase::BeforeCut,
            CrashPlan::AtBarrier {
                epoch: CUT,
                phase: CrashPhase::BarrierAligned,
            },
        ),
        // Crash between the cut snapshot's construction and its commit:
        // the hardest point — the rescale epoch itself must replay.
        (
            RescalePhase::BeforeCut,
            CrashPlan::AtBarrier {
                epoch: CUT,
                phase: CrashPhase::BarrierBeforeCommit,
            },
        ),
        // Crash right after the new topology resumed.
        (
            RescalePhase::AfterCut,
            CrashPlan::AfterBundles(CUT * INTERVAL + 2),
        ),
        // Crash at the first post-rescale checkpoint commit.
        (
            RescalePhase::AfterCut,
            CrashPlan::AtBarrier {
                epoch: CUT + 1,
                phase: CrashPhase::BarrierBeforeCommit,
            },
        ),
    ];
    for (phase, plan) in crashes {
        let run = ShardedCluster::new(cluster_cfg(4))
            .run_faulty(
                kv(7),
                benchmarks::sum_per_key,
                BUNDLES,
                INTERVAL,
                Some(ElasticPlan {
                    at_epoch: CUT,
                    retarget: Retarget::Shards(8),
                }),
                Some(ClusterCrash {
                    shard: 1,
                    phase: *phase,
                    plan: *plan,
                }),
            )
            .expect("faulty elastic run");
        let crashed_shard = match phase {
            RescalePhase::BeforeCut => &run.phase1[1],
            RescalePhase::AfterCut => &run.shards[1],
        };
        assert_eq!(crashed_shard.crashes, 1, "{phase:?} {plan:?} must fire");
        assert_eq!(
            run.canonical_outputs(),
            oracle.canonical_outputs(),
            "exactly-once must survive {phase:?} {plan:?}"
        );
        assert_eq!(run.records_in, oracle.records_in);
    }
}

#[test]
fn property_rescales_match_oracle_across_seeds_and_topologies() {
    for seed in [3u64, 11] {
        let oracle = run_shards(seed, 1);
        for (from, to) in [(2u32, 4u32), (4, 2), (2, 8)] {
            let run = ShardedCluster::new(cluster_cfg(from))
                .run_faulty(
                    kv(seed),
                    benchmarks::sum_per_key,
                    BUNDLES,
                    INTERVAL,
                    Some(ElasticPlan {
                        at_epoch: CUT,
                        retarget: Retarget::Shards(to),
                    }),
                    Some(ClusterCrash {
                        shard: from - 1,
                        phase: RescalePhase::BeforeCut,
                        plan: CrashPlan::AfterBundles(5),
                    }),
                )
                .expect("elastic run");
            assert_eq!(
                run.canonical_outputs(),
                oracle.canonical_outputs(),
                "seed {seed}: {from}->{to} with a crash must match the oracle"
            );
        }
    }
}

#[test]
fn route_tables_stay_total_under_random_loads() {
    let mut rng = SbxRng::seed_from_u64(42);
    for _ in 0..50 {
        let shards = 1 + (rng.next_u64() % 16) as u32;
        let table = RouteTable::uniform(shards, 64);
        let loads: Vec<u64> = (0..64).map(|_| rng.next_u64() % 10_000).collect();
        let (rebalanced, moved) = table.rebalanced(&loads, 1.25);
        // Totality: every slot still owned by a valid shard.
        let owned: u32 = (0..shards)
            .map(|s| rebalanced.slots_of(s).len() as u32)
            .sum();
        assert_eq!(owned, 64);
        for key in (0..2_000u64).map(|_| rng.next_u64()) {
            assert!(rebalanced.owner_of(key) < shards);
        }
        // A rebalance never increases the maximum shard load.
        let before = table.shard_loads(&loads).into_iter().max().unwrap_or(0);
        let after = rebalanced
            .shard_loads(&loads)
            .into_iter()
            .max()
            .unwrap_or(0);
        assert!(after <= before, "rebalance must not worsen the hot shard");
        // Moves are deterministic.
        assert_eq!(table.rebalanced(&loads, 1.25).1, moved);
    }
}

#[test]
fn ysb_mapped_keys_route_and_shuffle_consistently() {
    const CAMPAIGNS: u64 = 10;
    let cfg_for = |shards: u32| ClusterConfig {
        key_col: 2, // ad_id
        key_map: Some(Arc::new(|ad| ad % CAMPAIGNS)),
        ..cluster_cfg(shards)
    };
    let mk_src = || YsbSource::new(9, 100, CAMPAIGNS, 100_000);
    let mk_pipe = || benchmarks::ysb(CAMPAIGNS);
    let oracle = ShardedCluster::new(cfg_for(1))
        .run(mk_src, mk_pipe, BUNDLES, INTERVAL)
        .expect("ysb oracle");
    assert!(oracle.output_records > 0);
    let sharded = ShardedCluster::new(cfg_for(4))
        .run(mk_src, mk_pipe, BUNDLES, INTERVAL)
        .expect("ysb 4 shards");
    assert_eq!(sharded.canonical_outputs(), oracle.canonical_outputs());
    // And through a rescale: window state holding raw ad ids must be
    // shuffled by campaign, like the records that produced it.
    let grown = ShardedCluster::new(cfg_for(4))
        .run_elastic(
            mk_src,
            mk_pipe,
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: CUT,
                retarget: Retarget::Shards(8),
            },
        )
        .expect("ysb rescale");
    assert_eq!(grown.canonical_outputs(), oracle.canonical_outputs());
}

#[test]
fn zipf_hot_shard_rebalance_moves_the_hot_key_range() {
    let mk_src = || KvSource::new(13, 10_000, 100_000).with_zipf(1.1);
    let cluster = ShardedCluster::new(cluster_cfg(4));
    let run = cluster
        .run_elastic(
            mk_src,
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: CUT,
                retarget: Retarget::Rebalance { tolerance: 1.10 },
            },
        )
        .expect("rebalance run");
    let rescale = run.rescale.as_ref().expect("rebalance happened");
    assert_eq!(rescale.from_shards, 4);
    assert_eq!(rescale.to_shards, 4);
    assert!(
        !rescale.moved_slots.is_empty(),
        "Zipf skew must trigger slot moves"
    );
    // The phase-1 hot shard demonstrably sheds key ranges (later moves may
    // drain other shards once the hottest is flattened).
    let uniform = RouteTable::uniform(4, run.slot_loads.len() as u32);
    let hot = run
        .phase1
        .iter()
        .max_by_key(|s| s.records_in)
        .map(|s| s.shard)
        .expect("phase 1 ran");
    assert!(
        rescale
            .moved_slots
            .iter()
            .any(|&s| uniform.owner_of_slot(s) == hot),
        "a hot key range must move off shard {hot}"
    );
    // The final topology is measurably flatter than the skewed phase 1:
    // compare each phase's max shard share of its own traffic.
    let share = |shards: &[sbx_cluster::ShardSummary]| {
        let total: u64 = shards.iter().map(|s| s.records_in).sum();
        let max = shards.iter().map(|s| s.records_in).max().unwrap_or(0);
        max as f64 / total.max(1) as f64
    };
    assert!(
        share(&run.shards) < share(&run.phase1),
        "rebalance must flatten the hot shard (before {:.3}, after {:.3})",
        share(&run.phase1),
        share(&run.shards)
    );
    // Exactly-once holds through the rebalance too.
    let oracle = cluster
        .run(mk_src, benchmarks::sum_per_key, BUNDLES, INTERVAL)
        .expect("zipf oracle");
    assert_eq!(run.canonical_outputs(), oracle.canonical_outputs());
}

#[test]
fn deterministic_metrics_across_identical_runs() {
    let export = || {
        let reg = sbx_obs::MetricsRegistry::active();
        let mut cfg = ClusterConfig {
            metrics: reg.clone(),
            ..cluster_cfg(4)
        };
        // One worker thread: adopted HBM-placement gauges must not depend
        // on host-contention-sensitive KPA placement interleaving.
        cfg.engine.threads = 1;
        ShardedCluster::new(cfg)
            .run_elastic(
                kv(5),
                benchmarks::sum_per_key,
                BUNDLES,
                INTERVAL,
                ElasticPlan {
                    at_epoch: CUT,
                    retarget: Retarget::Shards(8),
                },
            )
            .expect("metrics run");
        reg.snapshot().to_jsonl()
    };
    let a = export();
    let b = export();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed, same export bytes");
    assert!(a.contains("cluster.shard0.records_in"));
    assert!(a.contains("cluster.shuffle.wire_bytes"));
    assert!(a.contains("cluster.link."));
}

#[test]
fn invalid_plans_are_rejected() {
    let cluster = ShardedCluster::new(cluster_cfg(4));
    // Cut epoch after the stream ends.
    let err = cluster
        .run_elastic(
            kv(1),
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: 99,
                retarget: Retarget::Shards(8),
            },
        )
        .expect_err("late cut must be rejected");
    assert!(matches!(err, ClusterError::Topology(_)));
    // Zero-shard retarget.
    assert!(matches!(
        cluster.run_elastic(
            kv(1),
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: CUT,
                retarget: Retarget::Shards(0),
            },
        ),
        Err(ClusterError::Topology(_))
    ));
    // Epoch zero.
    assert!(matches!(
        cluster.run_elastic(
            kv(1),
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: 0,
                retarget: Retarget::Shards(8),
            },
        ),
        Err(ClusterError::Topology(_))
    ));
}

use std::fmt;

/// Event time of a record, in source-defined ticks (the benchmarks use
/// nanoseconds-like integer ticks where 1 second of event time spans one
/// window of 10 M records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EventTime(pub u64);

impl EventTime {
    /// The earliest representable time.
    pub const MIN: EventTime = EventTime(0);
    /// The latest representable time.
    pub const MAX: EventTime = EventTime(u64::MAX);

    /// The raw tick value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating addition of ticks.
    pub fn saturating_add(self, ticks: u64) -> EventTime {
        EventTime(self.0.saturating_add(ticks))
    }
}

impl fmt::Display for EventTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for EventTime {
    fn from(raw: u64) -> Self {
        EventTime(raw)
    }
}

/// A watermark: the source's promise that every subsequent record has an
/// event timestamp **at or after** this time (paper §2.1).
///
/// Watermarks drive window closure — an operator may finalize a window once
/// a watermark at or past the window's end arrives. Records may still arrive
/// out of order *between* watermarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Watermark(pub EventTime);

impl Watermark {
    /// The time this watermark guarantees.
    pub fn time(self) -> EventTime {
        self.0
    }

    /// Whether this watermark closes a window ending at `window_end`
    /// (exclusive end).
    pub fn closes(self, window_end: EventTime) -> bool {
        self.0 >= window_end
    }
}

impl fmt::Display for Watermark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wm@{}", self.0)
    }
}

impl From<u64> for Watermark {
    fn from(raw: u64) -> Self {
        Watermark(EventTime(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_time_orders_naturally() {
        assert!(EventTime(1) < EventTime(2));
        assert_eq!(EventTime::from(7).raw(), 7);
        assert_eq!(EventTime(u64::MAX).saturating_add(1), EventTime::MAX);
    }

    #[test]
    fn watermark_closes_windows_at_or_before_it() {
        let wm = Watermark::from(100);
        assert!(wm.closes(EventTime(100)));
        assert!(wm.closes(EventTime(50)));
        assert!(!wm.closes(EventTime(101)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(EventTime(3).to_string(), "t3");
        assert_eq!(Watermark::from(3).to_string(), "wm@t3");
    }
}

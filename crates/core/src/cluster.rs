//! Multi-instance (distributed) execution (paper §3: "StreamBox-HBM runs
//! standalone on one machine or as multiple distributed instances on many
//! machines").
//!
//! The distributed design itself is out of the paper's scope ("our
//! contribution is the single-machine design"), so this layer is
//! deliberately simple: one logical stream is sharded by key across `n`
//! independent engine instances, each with its own hybrid memory and NIC;
//! results are the union of the instances' outputs, and cluster throughput
//! is their sum (the machines run concurrently).

// sbx-lint: out-of-scope(raw-alloc, cluster topology setup; once per run)
use sbx_ingress::{Partitioned, Source};

use crate::{Engine, EngineError, Pipeline, RunConfig, RunReport};

/// Aggregate result of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-instance reports, in instance order.
    pub per_instance: Vec<RunReport>,
}

impl ClusterReport {
    /// Total records ingested across instances.
    pub fn records_in(&self) -> u64 {
        self.per_instance.iter().map(|r| r.records_in).sum()
    }

    /// Total output records across instances.
    pub fn output_records(&self) -> u64 {
        self.per_instance.iter().map(|r| r.output_records).sum()
    }

    /// Cluster throughput: instances run concurrently, so the cluster
    /// completes when the slowest instance does.
    pub fn throughput_rps(&self) -> f64 {
        let makespan = self
            .per_instance
            .iter()
            .map(|r| r.sim_secs)
            .fold(0.0f64, f64::max);
        if makespan > 0.0 {
            self.records_in() as f64 / makespan
        } else {
            0.0
        }
    }

    /// Worst output delay across instances.
    pub fn max_output_delay_secs(&self) -> f64 {
        self.per_instance
            .iter()
            .map(|r| r.max_output_delay_secs)
            .fold(0.0, f64::max)
    }
}

/// A set of identical engine instances sharing one logical input stream by
/// key partitioning.
///
/// # Example
///
/// ```
/// use sbx_engine::{benchmarks, Cluster, RunConfig};
/// use sbx_ingress::KvSource;
///
/// let cluster = Cluster::new(2, RunConfig::default());
/// let report = cluster
///     .run(|| KvSource::new(1, 100, 1_000_000), benchmarks::sum_per_key, 0, 8)
///     .unwrap();
/// assert_eq!(report.per_instance.len(), 2);
/// assert!(report.throughput_rps() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    instances: u64,
    cfg: RunConfig,
}

impl Cluster {
    /// A cluster of `instances` engines, each configured with `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero.
    pub fn new(instances: u64, cfg: RunConfig) -> Self {
        assert!(instances > 0, "need at least one instance");
        Cluster { instances, cfg }
    }

    /// Number of instances.
    pub fn instances(&self) -> u64 {
        self.instances
    }

    /// Runs `make_pipeline()` on every instance over key-partitioned
    /// shards of `make_source()` (column `key_col`), each instance
    /// ingesting `bundles` bundles.
    ///
    /// `make_source` must construct identically seeded sources so the
    /// shards are disjoint views of one logical stream.
    ///
    /// # Errors
    ///
    /// Returns the first instance failure.
    pub fn run<S: Source>(
        &self,
        make_source: impl Fn() -> S,
        make_pipeline: impl Fn() -> Pipeline,
        key_col: usize,
        bundles: usize,
    ) -> Result<ClusterReport, EngineError> {
        let mut per_instance = Vec::with_capacity(self.instances as usize);
        for id in 0..self.instances {
            let source = Partitioned::new(make_source(), key_col, self.instances, id);
            let engine = Engine::new(self.cfg.clone());
            per_instance.push(engine.run(source, make_pipeline(), bundles)?);
        }
        Ok(ClusterReport { per_instance })
    }

    /// Runs like [`Cluster::run`] with per-shard coordinated checkpoints:
    /// every instance injects a barrier each `barrier_interval` bundles
    /// and reports its snapshots to its own element of `hooks` (one hook
    /// per instance, in instance order). Because all shards see the same
    /// barrier cadence, epoch `e` on every shard covers the same logical
    /// stream prefix; a coordinated cluster checkpoint is the latest epoch
    /// complete on *all* shards (computed by the recovery layer).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if `hooks.len()` differs from the
    /// instance count, otherwise the first instance failure — including
    /// injected [`EngineError::Crashed`] faults.
    pub fn run_checkpointed<S: Source>(
        &self,
        make_source: impl Fn() -> S,
        make_pipeline: impl Fn() -> Pipeline,
        key_col: usize,
        bundles: usize,
        barrier_interval: u64,
        hooks: &mut [&mut dyn crate::checkpoint::CheckpointHooks],
    ) -> Result<ClusterReport, EngineError> {
        if hooks.len() as u64 != self.instances {
            return Err(EngineError::Config(format!(
                "need one checkpoint hook per instance: {} hooks for {} instances",
                hooks.len(),
                self.instances
            )));
        }
        let mut per_instance = Vec::with_capacity(self.instances as usize);
        for (id, hook) in hooks.iter_mut().enumerate() {
            let source = Partitioned::new(make_source(), key_col, self.instances, id as u64);
            let engine = Engine::new(self.cfg.clone());
            per_instance.push(engine.run_with_hooks(
                source,
                make_pipeline(),
                bundles,
                Some(barrier_interval),
                *hook,
            )?);
        }
        Ok(ClusterReport { per_instance })
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use sbx_ingress::{KvSource, NicModel, SenderConfig};
    use sbx_records::Col;

    use super::*;
    use crate::benchmarks;

    fn cfg() -> RunConfig {
        RunConfig {
            cores: 16,
            collect_outputs: true,
            sender: SenderConfig {
                bundle_rows: 1_000,
                bundles_per_watermark: 5,
                nic: NicModel::rdma_40g(),
            },
            ..RunConfig::default()
        }
    }

    fn sums(reports: &[RunReport]) -> HashMap<(u64, u64), u64> {
        let mut m = HashMap::new();
        for r in reports {
            for b in &r.outputs {
                for row in 0..b.rows() {
                    let w = b.value(row, Col(2));
                    *m.entry((w, b.value(row, Col(0)))).or_insert(0) += b.value(row, Col(1));
                }
            }
        }
        m
    }

    /// Sharding must not change the computed aggregates: every instance's
    /// outputs equal the oracle computed over exactly its shard of the
    /// logical stream, and no key is computed on two instances.
    #[test]
    fn cluster_outputs_match_per_shard_oracles() {
        use sbx_ingress::{Partitioned, Source};
        let mk_src = || KvSource::new(9, 200, 1_000_000).with_value_range(1_000);
        let cluster = Cluster::new(3, cfg());
        let creport = cluster.run(mk_src, benchmarks::sum_per_key, 0, 10).unwrap();
        assert_eq!(creport.per_instance.len(), 3);
        assert_eq!(creport.records_in(), 30_000);

        let mut seen = std::collections::HashSet::new();
        for (id, r) in creport.per_instance.iter().enumerate() {
            // Oracle: replay this shard's exact records.
            let mut shard = Partitioned::new(mk_src(), 0, 3, id as u64);
            let mut flat = Vec::new();
            shard.fill(10_000, &mut flat);
            let mut expect: HashMap<(u64, u64), u64> = HashMap::new();
            for row in flat.chunks(3) {
                let w = (row[2] / benchmarks::WINDOW_TICKS) * benchmarks::WINDOW_TICKS;
                *expect.entry((w, row[0])).or_insert(0) += row[1];
            }
            assert_eq!(sums(std::slice::from_ref(r)), expect, "instance {id}");
            for key in expect.keys() {
                assert!(seen.insert(*key), "key {key:?} computed on two instances");
            }
        }
    }

    #[test]
    fn cluster_throughput_aggregates_instances() {
        let mk_src = || KvSource::new(3, 1_000, 1_000_000).with_value_range(100);
        let one = Cluster::new(1, cfg())
            .run(mk_src, benchmarks::sum_per_key, 0, 10)
            .unwrap();
        let four = Cluster::new(4, cfg())
            .run(mk_src, benchmarks::sum_per_key, 0, 10)
            .unwrap();
        // Four concurrent machines ingest ~4x the records in similar time.
        assert!(four.throughput_rps() > 2.0 * one.throughput_rps());
        assert!(four.max_output_delay_secs() >= 0.0);
        assert_eq!(four.output_records(), sums(&four.per_instance).len() as u64);
    }
}

//! Instrumentation overhead: host-side cost of sbx-obs on the Figure-7
//! YSB pipeline, comparing the no-op recorders against metrics-only and
//! metrics+tracing runs.
//!
//! Simulated results (throughput, bandwidth, delay) are identical across
//! modes by construction — the recorders never touch simulated time — so
//! the interesting number is host wall-clock per run. EXPERIMENTS.md
//! records the measured overhead; `tests/observability.rs` asserts the
//! simulated-throughput side of the 3% budget.

// sbx-lint: out-of-scope(raw-alloc, bench table; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench table; a failed run should abort loudly)
use sbx_engine::{benchmarks, Engine, RunConfig};
use sbx_ingress::{NicModel, SenderConfig, YsbSource};
use sbx_obs::Obs;
use sbx_simmem::MachineConfig;

use crate::harness::time_fn;
use crate::table::{f1, Table};

const NUM_ADS: u64 = 10_000;
const NUM_CAMPAIGNS: u64 = 1_000;
const EVENT_RATE: u64 = 10_000_000;
const BUNDLE_ROWS: usize = 20_000;
const BUNDLES: usize = 50;
const CORES: u32 = 32;
const SAMPLES: usize = 5;

/// One Figure-7-style YSB run under the given recorders; returns
/// simulated throughput in M records/s.
pub fn ysb_run(obs: Obs) -> f64 {
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores: CORES,
        sender: SenderConfig {
            bundle_rows: BUNDLE_ROWS,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        obs,
        ..RunConfig::default()
    };
    Engine::new(cfg)
        .run(
            YsbSource::new(7, NUM_ADS, NUM_CAMPAIGNS, EVENT_RATE),
            benchmarks::ysb(NUM_CAMPAIGNS),
            BUNDLES,
        )
        .expect("run succeeds")
        .throughput_mrps()
}

/// A named recorder-mode constructor under measurement.
type Mode = (&'static str, fn() -> Obs);

/// The three recorder modes under measurement.
fn modes() -> [Mode; 3] {
    [
        ("no-op", Obs::noop as fn() -> Obs),
        ("metrics", Obs::metrics_only),
        ("metrics+trace", Obs::enabled),
    ]
}

/// Times each mode and renders the overhead table.
pub fn run() -> String {
    let mut table = Table::new(
        "Observability overhead: Figure-7 YSB pipeline, host wall-clock per run",
        &["mode", "host ms/run", "overhead %", "sim M rec/s"],
    );
    // Whole-process warmup so the first timed mode isn't also paying the
    // host's cold caches and frequency ramp.
    for _ in 0..3 {
        std::hint::black_box(ysb_run(Obs::noop()));
    }
    let mut baseline = 0.0f64;
    for (name, mk) in modes() {
        let mut sim_mrps = 0.0;
        let mean = time_fn(&format!("ysb obs={name}"), SAMPLES, || {
            sim_mrps = ysb_run(mk());
        });
        if baseline == 0.0 {
            baseline = mean;
        }
        let overhead = (mean - baseline) / baseline * 100.0;
        table.row(vec![
            name.to_string(),
            f1(mean * 1e3),
            f1(overhead),
            f1(sim_mrps),
        ]);
    }
    table.print()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recorders must not perturb the simulation: all three modes report
    /// the same simulated throughput on the same seeded stream.
    #[test]
    fn simulated_results_agree_across_modes() {
        let noop = ysb_run(Obs::noop());
        let metrics = ysb_run(Obs::metrics_only());
        assert!((noop - metrics).abs() / noop < 1e-9, "{noop} vs {metrics}");
    }
}

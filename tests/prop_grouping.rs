//! Property test for the pluggable grouping backends (DESIGN.md §14):
//! over random seeds, cardinalities, skews and thread counts, every
//! backend — KPA sort-merge, sharded hash, row-engine baseline, and the
//! adaptive chooser — must emit byte-identical committed window
//! aggregates, and the adaptive backend's per-window decisions must be a
//! pure function of the stream (identical across thread counts and across
//! repeated same-seed runs).

use sbx_prng::SbxRng;
use streambox_hbm::engine::ops::{AggKind, KeyedAggregate, WindowInto};
use streambox_hbm::engine::{
    DemandBalancer, EngineMode, ImpactTag, Message, OpCtx, Operator, StreamData,
};
use streambox_hbm::prelude::*;

const ROWS_PER_WINDOW: usize = 2_000;
const WINDOWS: usize = 3;
const BUNDLES_PER_WINDOW: usize = 8;
const WINDOW_TICKS: u64 = 10;
const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Deterministic key stream: uniform draws over `domain`, or cubed-unit
/// draws (mass piled onto low keys) when `skewed`.
fn gen_keys(seed: u64, domain: u64, skewed: bool) -> Vec<u64> {
    let mut rng = SbxRng::seed_from_u64(seed);
    (0..ROWS_PER_WINDOW * WINDOWS)
        .map(|_| {
            if skewed {
                let u = rng.random_f64();
                (((u * u * u) * domain as f64) as u64).min(domain - 1)
            } else {
                rng.random_range(0..domain)
            }
        })
        .collect()
}

/// Feeds the stream through `WindowInto -> KeyedAggregate` with the given
/// backend and thread count; returns the flattened committed output rows
/// and the per-window backend decisions.
fn run(
    keys: &[u64],
    kind: AggKind,
    grouping: GroupingSpec,
    threads: usize,
) -> (Vec<u64>, Vec<&'static str>) {
    let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
    let mut bal = DemandBalancer::new();
    let spec = WindowSpec::fixed(WINDOW_TICKS);
    let mut window_op = WindowInto::new(spec);
    let mut agg = KeyedAggregate::new(spec, Col(0), Col(1), kind).with_grouping(grouping);
    let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, threads, ImpactTag::High);

    let mut out = Vec::new();
    let mut picks = Vec::new();
    let bundle_rows = ROWS_PER_WINDOW.div_ceil(BUNDLES_PER_WINDOW);
    for w in 0..WINDOWS {
        let wkeys = &keys[w * ROWS_PER_WINDOW..(w + 1) * ROWS_PER_WINDOW];
        for chunk in wkeys.chunks(bundle_rows) {
            let mut flat = Vec::with_capacity(chunk.len() * 3);
            for (j, &k) in chunk.iter().enumerate() {
                let ts = w as u64 * WINDOW_TICKS + (j as u64 % WINDOW_TICKS);
                flat.extend_from_slice(&[k, (k * 7 + 3) % 1_000, ts]);
            }
            let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
            for m in window_op
                .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
                .unwrap()
            {
                let outs = agg.on_message(&mut ctx, m).unwrap();
                assert!(outs.is_empty(), "no output before watermark");
            }
            picks.extend(ctx.take_events());
        }
        let wm = Watermark::from((w as u64 + 1) * WINDOW_TICKS);
        for m in window_op
            .on_message(&mut ctx, Message::Watermark(wm))
            .unwrap()
        {
            for o in agg.on_message(&mut ctx, m).unwrap() {
                if let Message::Data {
                    data: StreamData::Bundle(b),
                    ..
                } = o
                {
                    for r in 0..b.rows() {
                        out.extend_from_slice(&[
                            b.value(r, Col(0)),
                            b.value(r, Col(1)),
                            b.value(r, Col(2)),
                        ]);
                    }
                }
            }
        }
    }
    (out, picks)
}

/// The core property: byte-identical outputs across every backend and
/// thread count, for uniform and skewed streams at three cardinalities,
/// for both a scalar kind (Sum) and a full-values kind (Median).
#[test]
fn backends_and_thread_counts_are_output_transparent() {
    for seed in [3u64, 17] {
        for domain in [8u64, 500, 20_000] {
            for skewed in [false, true] {
                let keys = gen_keys(seed, domain, skewed);
                let kind = if skewed {
                    AggKind::Median
                } else {
                    AggKind::Sum
                };
                let (reference, _) = run(&keys, kind, GroupingSpec::SortMerge, 2);
                assert!(!reference.is_empty(), "windows must close");
                for grouping in [
                    GroupingSpec::SortMerge,
                    GroupingSpec::Hash,
                    GroupingSpec::RowBaseline,
                    GroupingSpec::Adaptive,
                ] {
                    for threads in THREADS {
                        let (out, _) = run(&keys, kind, grouping, threads);
                        assert_eq!(
                            out, reference,
                            "{grouping:?} at {threads} threads diverges \
                             (seed {seed}, domain {domain}, skewed {skewed})"
                        );
                    }
                }
            }
        }
    }
}

/// Adaptive decisions are a pure function of the stream: identical across
/// thread counts and across repeated runs of the same seed.
#[test]
fn adaptive_decisions_are_deterministic() {
    for seed in [3u64, 17] {
        for domain in [8u64, 20_000] {
            let keys = gen_keys(seed, domain, false);
            let (_, reference) = run(&keys, AggKind::Sum, GroupingSpec::Adaptive, 1);
            assert_eq!(reference.len(), WINDOWS, "one decision per window");
            assert_eq!(reference[0], "groupby.backend.sort", "cold start sorts");
            for threads in THREADS {
                for _repeat in 0..2 {
                    let (_, picks) = run(&keys, AggKind::Sum, GroupingSpec::Adaptive, threads);
                    assert_eq!(
                        picks, reference,
                        "decisions drifted (seed {seed}, domain {domain}, {threads} threads)"
                    );
                }
            }
        }
    }
}

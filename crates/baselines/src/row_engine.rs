// sbx-lint: out-of-scope(raw-alloc, baseline engine measured for contrast; not the production data path)
// sbx-lint: out-of-scope(no-panic, baseline engine measured for contrast; not the production data path)
use std::collections::BTreeMap;

use sbx_ingress::{IngressEvent, Sender, SenderConfig, Source};
use sbx_kpa::hash::HashGrouper;
use sbx_kpa::{profile, ExecCtx};
use sbx_records::{Col, WindowSpec};
use sbx_simmem::{AccessProfile, AllocError, CostModel, MachineConfig, MemEnv, MemKind, Priority};

/// Per-record engine overhead in KNL cycles: deserialization, per-record
/// operator dispatch, managed-runtime bookkeeping. Calibrated so that the
/// row engine's per-core YSB throughput is ~18x below StreamBox-HBM's on
/// KNL (paper Fig. 7).
pub const ROW_ENGINE_CYCLES_PER_RECORD_KNL: f64 = 5_900.0;

/// The same overhead on the X56 Xeon, whose wide out-of-order cores retire
/// the row-at-a-time instruction stream roughly twice as fast per cycle as
/// KNL's simple cores (calibrated to Flink saturating 10 GbE with 32 of 56
/// X56 cores, paper §7.1).
pub const ROW_ENGINE_CYCLES_PER_RECORD_X56: f64 = 3_000.0;

/// Configuration of a [`RowEngine`] run.
#[derive(Debug, Clone)]
pub struct RowEngineConfig {
    /// The machine to model.
    pub machine: MachineConfig,
    /// Cores the engine may use.
    pub cores: u32,
    /// Per-record overhead in cycles (see the calibration constants).
    pub cycles_per_record: f64,
    /// Ingestion configuration.
    pub sender: SenderConfig,
}

impl RowEngineConfig {
    /// Flink-class engine on the paper's KNL machine.
    pub fn flink_knl(cores: u32, sender: SenderConfig) -> Self {
        RowEngineConfig {
            machine: MachineConfig::knl(),
            cores,
            cycles_per_record: ROW_ENGINE_CYCLES_PER_RECORD_KNL,
            sender,
        }
    }

    /// Flink-class engine on the X56 Xeon.
    pub fn flink_x56(cores: u32, sender: SenderConfig) -> Self {
        RowEngineConfig {
            machine: MachineConfig::x56(),
            cores,
            cycles_per_record: ROW_ENGINE_CYCLES_PER_RECORD_X56,
            sender,
        }
    }
}

/// The row-engine workload: which per-record pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowPipeline {
    /// The YSB pipeline: filter on `ad_type`, map `ad_id` to a campaign,
    /// count per campaign per window.
    YsbCount {
        /// Number of campaigns for the ad→campaign mapping.
        campaigns: u64,
    },
    /// Sum of a value column per key per window (benchmark 2's shape).
    SumPerKey {
        /// Grouping key column.
        key: Col,
        /// Summed value column.
        value: Col,
    },
}

/// Result of one row-engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RowRunReport {
    /// Records ingested.
    pub records_in: u64,
    /// Windows externalized.
    pub windows_closed: u64,
    /// Output (key, aggregate) pairs emitted.
    pub output_records: u64,
    /// Total simulated time, seconds.
    pub sim_secs: f64,
    /// Input throughput, records per second.
    pub throughput_rps: f64,
}

impl RowRunReport {
    /// Throughput in millions of records per second.
    pub fn throughput_mrps(&self) -> f64 {
        self.throughput_rps / 1e6
    }
}

/// A Flink-class comparison engine: row-at-a-time processing with hash
/// grouping on hardware-managed hybrid memory.
///
/// Functionally exact (real hash tables, real per-record filtering);
/// timing follows the same cost-model approach as the main engine, with
/// the per-record dispatch overhead dominating — which is precisely why
/// this engine class cannot saturate even a 10 GbE link on KNL.
#[derive(Debug)]
pub struct RowEngine {
    cfg: RowEngineConfig,
    env: MemEnv,
}

impl RowEngine {
    /// A row engine for `cfg`.
    pub fn new(cfg: RowEngineConfig) -> Self {
        let machine = cfg.machine.with_cores(cfg.cores);
        RowEngine {
            cfg,
            env: MemEnv::new(machine),
        }
    }

    /// The engine's memory environment.
    pub fn env(&self) -> &MemEnv {
        &self.env
    }

    /// Runs `pipeline` over `bundles` bundles from `source` with fixed
    /// windows of `window_ticks` event-time ticks.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if DRAM is exhausted.
    pub fn run<S: Source>(
        self,
        source: S,
        pipeline: RowPipeline,
        window_ticks: u64,
        bundles: usize,
    ) -> Result<RowRunReport, AllocError> {
        let spec = WindowSpec::fixed(window_ticks);
        let cost = CostModel::new(self.env.machine().clone());
        let cores = self.cfg.cores;
        let mut sender = Sender::new(&self.env, source, self.cfg.sender);
        let mut ctx = ExecCtx::new(&self.env);

        let mut windows: BTreeMap<u64, HashGrouper> = BTreeMap::new();
        let mut records_in = 0u64;
        let mut windows_closed = 0u64;
        let mut output_records = 0u64;
        let mut remaining = bundles;
        let mut round_profile = AccessProfile::new();
        let mut round_ingest_ns = 0u64;

        let flush_round = |profile: &mut AccessProfile, ingest_ns: &mut u64| {
            let compute = cost.time_secs(profile, cores);
            let ingest = *ingest_ns as f64 / 1e9;
            let secs = compute.max(ingest);
            if secs > 0.0 {
                let start = self.env.clock().now_ns();
                self.env.charge_traffic(profile, start, (secs * 1e9) as u64);
                self.env.clock().advance((secs * 1e9) as u64);
            }
            *profile = AccessProfile::new();
            *ingest_ns = 0;
        };

        while remaining > 0 {
            match sender.next_event()? {
                IngressEvent::Bundle(b, wire_ns) => {
                    remaining -= 1;
                    records_in += b.rows() as u64;
                    round_ingest_ns += wire_ns;
                    let schema = b.schema();
                    let ts_col = schema.ts_col();
                    for row in 0..b.rows() {
                        let w = b.ts(row).raw() / spec.stride();
                        let (key, value) = match pipeline {
                            RowPipeline::YsbCount { campaigns } => {
                                // Filter on ad_type (col 3), keep < 2 of 5.
                                if b.value(row, Col(3)) >= 2 {
                                    continue;
                                }
                                (b.value(row, Col(2)) % campaigns, 1)
                            }
                            RowPipeline::SumPerKey { key, value } => {
                                (b.value(row, key), b.value(row, value))
                            }
                        };
                        let table = match windows.get(&w) {
                            Some(_) => windows.get_mut(&w).expect("exists"),
                            None => {
                                let t = HashGrouper::with_slots(
                                    &mut ctx,
                                    1024,
                                    MemKind::Dram,
                                    Priority::Normal,
                                )?;
                                windows.entry(w).or_insert(t)
                            }
                        };
                        table.insert(key, value);
                        let _ = ts_col;
                    }
                    // Row-at-a-time costs: dispatch overhead per record plus
                    // the hash-grouping access profile.
                    let n = b.rows();
                    round_profile = round_profile
                        .merge(&profile::hash_group(n, MemKind::Dram))
                        .cpu(n as f64 * (self.cfg.cycles_per_record - profile::HASH_CYCLES));
                }
                IngressEvent::Watermark(wm) => {
                    let closing: Vec<u64> = windows
                        .keys()
                        .copied()
                        .take_while(|&w| wm.closes(spec.end(sbx_records::WindowId(w))))
                        .collect();
                    for w in closing {
                        let table = windows.remove(&w).expect("window exists");
                        output_records += table.len() as u64;
                        windows_closed += 1;
                        round_profile = round_profile
                            .merge(&AccessProfile::new().rand(MemKind::Dram, table.len() as f64));
                    }
                    flush_round(&mut round_profile, &mut round_ingest_ns);
                }
                // The baseline row engine does not checkpoint; barriers
                // only appear when explicitly requested via the sender.
                IngressEvent::Barrier(_) => {}
            }
        }
        // Drain remaining windows.
        for (_, table) in std::mem::take(&mut windows) {
            output_records += table.len() as u64;
            windows_closed += 1;
        }
        flush_round(&mut round_profile, &mut round_ingest_ns);

        let sim_secs = self.env.clock().now_secs();
        Ok(RowRunReport {
            records_in,
            windows_closed,
            output_records,
            sim_secs,
            throughput_rps: if sim_secs > 0.0 {
                records_in as f64 / sim_secs
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_ingress::{KvSource, NicModel, YsbSource};

    fn sender_cfg() -> SenderConfig {
        SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::ethernet_10g(),
        }
    }

    #[test]
    fn ysb_count_runs_and_counts_views() {
        let cfg = RowEngineConfig::flink_knl(64, sender_cfg());
        let engine = RowEngine::new(cfg);
        let src = YsbSource::new(3, 1000, 100, 10_000_000);
        let report = engine
            .run(
                src,
                RowPipeline::YsbCount { campaigns: 100 },
                1_000_000_000,
                20,
            )
            .unwrap();
        assert_eq!(report.records_in, 40_000);
        assert!(report.windows_closed >= 1);
        // With 100 campaigns and 40k records, every campaign sees events.
        assert!(report.output_records >= 100);
        assert!(report.throughput_rps > 0.0);
    }

    #[test]
    fn sum_per_key_matches_hash_semantics() {
        let cfg = RowEngineConfig::flink_knl(16, sender_cfg());
        let engine = RowEngine::new(cfg);
        let src = KvSource::new(5, 10, 1_000_000).with_value_range(100);
        let report = engine
            .run(
                src,
                RowPipeline::SumPerKey {
                    key: Col(0),
                    value: Col(1),
                },
                1_000_000_000,
                10,
            )
            .unwrap();
        assert_eq!(report.records_in, 20_000);
        // 10 distinct keys, 1 window.
        assert_eq!(report.output_records, 10);
    }

    #[test]
    fn per_core_gap_to_streambox_is_an_order_of_magnitude() {
        // Row engine per-core rate on KNL: ~1.3e9 / 5900 ≈ 0.22 M rec/s.
        let per_core = 1.3e9 / ROW_ENGINE_CYCLES_PER_RECORD_KNL / 1e6;
        assert!(per_core > 0.15 && per_core < 0.3, "{per_core} Mrec/s/core");
    }

    #[test]
    fn x56_cores_are_faster_per_record() {
        // Compile-time relationship between the two calibration constants;
        // kept as a test so a recalibration that breaks it shows up in CI.
        const { assert!(ROW_ENGINE_CYCLES_PER_RECORD_X56 < ROW_ENGINE_CYCLES_PER_RECORD_KNL) }
    }

    #[test]
    fn more_cores_increase_throughput_until_nic_limit() {
        let run = |cores: u32| {
            let engine = RowEngine::new(RowEngineConfig::flink_knl(cores, sender_cfg()));
            engine
                .run(
                    YsbSource::new(1, 100, 10, 50_000_000),
                    RowPipeline::YsbCount { campaigns: 10 },
                    1_000_000_000,
                    20,
                )
                .unwrap()
                .throughput_rps
        };
        let t2 = run(2);
        let t16 = run(16);
        let t64 = run(64);
        assert!(t16 > 3.0 * t2, "t2={t2} t16={t16}");
        assert!(t64 >= t16 * 0.95);
        // Even 64 KNL cores stay below the 10 GbE record-rate limit.
        let limit = NicModel::ethernet_10g().record_rate_limit(56);
        assert!(t64 < limit, "t64={t64} limit={limit}");
    }
}

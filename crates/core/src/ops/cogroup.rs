//! Cogroup (Table 1): groups two streams by key within each window and
//! emits one record per key combining a per-side aggregate.

use std::collections::BTreeMap;
use std::sync::Arc;

use sbx_kpa::{reduce_keyed, Kpa};
use sbx_records::{Col, RecordBundle, Schema, WindowId, WindowSpec};

use crate::checkpoint::{OpState, StateEntry};
use crate::ops::{closable, single, window_start, LateGuard};
use crate::{EngineError, ImpactTag, Message, OpCtx, Operator, StreamData};

/// Per-side aggregate applied by [`Cogroup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideAgg {
    /// Number of records on this side.
    Count,
    /// Wrapping sum of the value column on this side.
    Sum,
}

impl SideAgg {
    fn apply(self, values: &[u64]) -> u64 {
        match self {
            SideAgg::Count => values.len() as u64,
            SideAgg::Sum => values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
        }
    }
}

/// Cogroup: for every key present on *either* input stream within a window,
/// emits `(key, left_agg, right_agg, window_start)` at window close — keys
/// absent from one side contribute that side's identity (0).
///
/// Implemented on the sort/merge primitives like Keyed Aggregation: each
/// arriving KPA is key-swapped and sorted; the window state is one sorted
/// KPA per side; closure merges, reduces per side, and zips the two sorted
/// key sets in one co-scan.
pub struct Cogroup {
    key_col: Col,
    value_col: Col,
    agg: [SideAgg; 2],
    spec: WindowSpec,
    state: BTreeMap<WindowId, [Vec<Kpa>; 2]>,
    out_schema: Arc<Schema>,
    late: LateGuard,
}

impl Cogroup {
    /// A cogroup on `key_col`, aggregating `value_col` with `agg[side]`.
    pub fn new(spec: WindowSpec, key_col: Col, value_col: Col, agg: [SideAgg; 2]) -> Self {
        Cogroup {
            key_col,
            value_col,
            agg,
            spec,
            state: BTreeMap::new(),
            // sbx-lint: allow(raw-alloc, one-time schema construction)
            out_schema: Schema::new(vec!["key", "l_agg", "r_agg", "ts"], Col(3)),
            late: LateGuard::default(),
        }
    }

    /// Records dropped because their window had already closed.
    pub fn late_records(&self) -> u64 {
        self.late.dropped()
    }
}

impl std::fmt::Debug for Cogroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cogroup")
            .field("key_col", &self.key_col)
            .field("open_windows", &self.state.len())
            .finish()
    }
}

impl Operator for Cogroup {
    fn name(&self) -> &'static str {
        "Cogroup"
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data {
                port,
                data: StreamData::Windowed(w, mut kpa),
            } => {
                if self.late.is_late(&self.spec, w, kpa.len()) {
                    return Ok(Vec::new());
                }
                let side = (port as usize).min(1);
                if kpa.resident() != self.key_col {
                    ctx.charged(16, |e| kpa.key_swap(e, self.key_col));
                }
                ctx.sort(&mut kpa)?;
                self.state.entry(w).or_default()[side].push(kpa);
                Ok(Vec::new())
            }
            Message::Data { data, .. } => Err(EngineError::Config(format!(
                "Cogroup requires windowed KPAs, got {} unwindowed records",
                data.len()
            ))),
            Message::Watermark(wm) => {
                self.late.observe(wm);
                ctx.tag = ImpactTag::Urgent;
                let mut out = Vec::new();
                for w in closable(&self.state, &self.spec, wm) {
                    // `closable` returned keys of this map, so the entry
                    // is present; skip defensively rather than panic.
                    let Some([l, r]) = self.state.remove(&w) else {
                        continue;
                    };
                    let start = window_start(&self.spec, w).raw();
                    let mut sides: [Vec<(u64, u64)>; 2] = [Vec::new(), Vec::new()];
                    for (side, kpas) in [(0usize, l), (1, r)] {
                        if kpas.is_empty() {
                            continue;
                        }
                        let merged = ctx.merge_many(kpas)?;
                        let agg = self.agg[side];
                        let value_col = self.value_col;
                        let acc = &mut sides[side];
                        ctx.charged(16, |e| {
                            reduce_keyed(e, &merged, value_col, |g| {
                                acc.push((g.key, agg.apply(g.values)));
                            })
                        });
                    }
                    // Co-scan the two sorted per-key aggregate lists.
                    let (mut i, mut j) = (0usize, 0usize);
                    let (ls, rs) = (&sides[0], &sides[1]);
                    let mut rows = Vec::new();
                    while i < ls.len() || j < rs.len() {
                        let lk = ls.get(i).map(|p| p.0);
                        let rk = rs.get(j).map(|p| p.0);
                        match (lk, rk) {
                            (Some(a), Some(b)) if a == b => {
                                rows.extend_from_slice(&[a, ls[i].1, rs[j].1, start]);
                                i += 1;
                                j += 1;
                            }
                            (Some(a), Some(b)) if a < b => {
                                rows.extend_from_slice(&[a, ls[i].1, 0, start]);
                                i += 1;
                            }
                            (Some(_), Some(_)) | (None, Some(_)) => {
                                rows.extend_from_slice(&[rs[j].0, 0, rs[j].1, start]);
                                j += 1;
                            }
                            (Some(a), None) => {
                                rows.extend_from_slice(&[a, ls[i].1, 0, start]);
                                i += 1;
                            }
                            // Loop condition guarantees one side remains.
                            (None, None) => break,
                        }
                    }
                    let env = ctx.env();
                    let b = RecordBundle::from_rows(&env, Arc::clone(&self.out_schema), &rows)?;
                    out.push(Message::data(StreamData::Bundle(b)));
                }
                out.push(Message::Watermark(wm));
                Ok(out)
            }
            Message::Barrier(mut b) => {
                b.states.push(self.snapshot(ctx)?);
                Ok(single(Message::Barrier(b)))
            }
        }
    }

    fn snapshot(&self, ctx: &mut OpCtx<'_>) -> Result<OpState, EngineError> {
        let mut st = OpState {
            horizon: self.late.horizon().map(|h| h.time().raw()),
            scalars: Vec::new(),
            entries: Vec::new(),
        };
        for (w, sides) in &self.state {
            for (side, kpas) in sides.iter().enumerate() {
                for kpa in kpas {
                    st.entries
                        .push(StateEntry::from_kpa(ctx, w.0, side as u8, kpa)?);
                }
            }
        }
        Ok(st)
    }

    fn restore(&mut self, ctx: &mut OpCtx<'_>, state: &OpState) -> Result<(), EngineError> {
        if let Some(raw) = state.horizon {
            self.late.observe(sbx_records::Watermark::from(raw));
        }
        for e in &state.entries {
            let side = (e.port as usize).min(1);
            self.state.entry(WindowId(e.window)).or_default()[side].push(e.to_kpa(ctx)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WindowInto;
    use crate::{DemandBalancer, EngineMode};
    use sbx_records::Watermark;
    use sbx_simmem::{MachineConfig, MemEnv};

    fn feed(
        op: &mut Cogroup,
        window: &mut WindowInto,
        ctx: &mut OpCtx<'_>,
        env: &MemEnv,
        port: u8,
        rows: &[(u64, u64)],
    ) {
        let flat: Vec<u64> = rows.iter().flat_map(|&(k, v)| [k, v, 0]).collect();
        let b = RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap();
        for m in window
            .on_message(
                ctx,
                Message::Data {
                    port,
                    data: StreamData::Bundle(b),
                },
            )
            .unwrap()
        {
            op.on_message(ctx, m).unwrap();
        }
    }

    #[test]
    fn cogroup_zips_both_sides_per_key() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(100);
        let mut window = WindowInto::new(spec);
        let mut op = Cogroup::new(spec, Col(0), Col(1), [SideAgg::Sum, SideAgg::Count]);
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);

        feed(
            &mut op,
            &mut window,
            &mut ctx,
            &env,
            0,
            &[(1, 10), (1, 5), (3, 7)],
        );
        feed(
            &mut op,
            &mut window,
            &mut ctx,
            &env,
            1,
            &[(1, 99), (2, 42), (2, 43)],
        );

        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(1000)))
            .unwrap();
        let Message::Data {
            data: StreamData::Bundle(b),
            ..
        } = &out[0]
        else {
            panic!("expected bundle");
        };
        let got: Vec<(u64, u64, u64)> = (0..b.rows())
            .map(|r| (b.value(r, Col(0)), b.value(r, Col(1)), b.value(r, Col(2))))
            .collect();
        // key 1: left sum 15, right count 1; key 2: right only, count 2;
        // key 3: left only, sum 7.
        assert_eq!(got, vec![(1, 15, 1), (2, 0, 2), (3, 7, 0)]);
    }

    #[test]
    fn one_sided_windows_still_emit() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(100);
        let mut window = WindowInto::new(spec);
        let mut op = Cogroup::new(spec, Col(0), Col(1), [SideAgg::Count, SideAgg::Count]);
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        feed(&mut op, &mut window, &mut ctx, &env, 0, &[(9, 1), (9, 2)]);
        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(1000)))
            .unwrap();
        let Message::Data {
            data: StreamData::Bundle(b),
            ..
        } = &out[0]
        else {
            panic!("expected bundle");
        };
        assert_eq!(b.rows(), 1);
        assert_eq!(b.value(0, Col(1)), 2);
        assert_eq!(b.value(0, Col(2)), 0);
    }
}

//! Checkpoint overhead: snapshot interval vs throughput and output delay.
//!
//! Asynchronous barrier snapshotting is not free: every barrier aligns the
//! in-flight batch, materializes each stateful operator's KPA state
//! (Table-2 `Materialize`, paper §4.3) and writes the encoded snapshot
//! into the accounted DRAM pool — sequential DRAM traffic the bandwidth
//! monitor sees like any other. This harness sweeps the barrier interval
//! (bundles between checkpoints) over the TopK-per-key workload and
//! reports the throughput cost and snapshot footprint at each cadence,
//! with an uncheckpointed baseline as the reference.

// sbx-lint: out-of-scope(raw-alloc, bench harness; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench harness; a failed run should abort loudly)
use sbx_checkpoint::CheckpointCoordinator;
use sbx_engine::{benchmarks, Engine, RunConfig, RunReport};
use sbx_ingress::{KvSource, NicModel, SenderConfig};
use sbx_simmem::MachineConfig;

use crate::table::{f1, f2, Table};

const CORES: u32 = 64;
const BUNDLE_ROWS: usize = 20_000;
const BUNDLES: usize = 60;
const KEYS: u64 = 10_000;
const RATE: u64 = 20_000_000;

/// Barrier intervals swept (bundles between checkpoints).
pub const INTERVALS: [u64; 4] = [2, 5, 10, 20];

fn cfg() -> RunConfig {
    RunConfig {
        machine: MachineConfig::knl(),
        cores: CORES,
        sender: SenderConfig {
            bundle_rows: BUNDLE_ROWS,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    }
}

/// Runs TopK-per-key with a checkpoint every `interval` bundles (`None`
/// disables checkpointing). Returns the report plus the coordinator
/// holding the snapshot store and accounting samples.
pub fn checkpointed_run(interval: Option<u64>) -> (RunReport, CheckpointCoordinator) {
    let mut coord = CheckpointCoordinator::new();
    let engine = Engine::new(cfg());
    let source = KvSource::new(31, KEYS, RATE).with_value_range(1_000_000);
    let report = engine
        .run_with_hooks(
            source,
            benchmarks::topk_per_key(3),
            BUNDLES,
            interval,
            &mut coord,
        )
        .expect("run");
    (report, coord)
}

/// Regenerates the checkpoint-overhead sweep.
pub fn run() -> String {
    let (base, _) = checkpointed_run(None);
    let mut t = Table::new(
        "Checkpoint overhead: snapshot interval vs throughput (TopK, KNL, 64 cores)",
        &[
            "interval",
            "Mrec/s",
            "overhead %",
            "checkpoints",
            "avg snap KiB",
            "store KiB",
            "max delay ms",
        ],
    );
    t.row(vec![
        "off".to_string(),
        f1(base.throughput_mrps()),
        f2(0.0),
        "0".to_string(),
        "-".to_string(),
        "-".to_string(),
        f2(base.max_output_delay_secs * 1e3),
    ]);
    for interval in INTERVALS {
        let (r, coord) = checkpointed_run(Some(interval));
        let n = coord.samples().len().max(1);
        let avg_snap: u64 = coord
            .samples()
            .iter()
            .map(|s| s.snapshot_bytes)
            .sum::<u64>()
            / n as u64;
        let overhead = 100.0 * (1.0 - r.throughput_rps / base.throughput_rps);
        t.row(vec![
            interval.to_string(),
            f1(r.throughput_mrps()),
            f2(overhead),
            coord.samples().len().to_string(),
            (avg_snap / 1024).to_string(),
            (coord.store().total_bytes() / 1024).to_string(),
            f2(r.max_output_delay_secs * 1e3),
        ]);
    }
    t.print()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checkpointing must never change results: every swept cadence
    /// produces the same outputs as the uncheckpointed baseline.
    #[test]
    fn checkpointing_does_not_change_results() {
        let (base, _) = checkpointed_run(None);
        for interval in [5u64, 20] {
            let (r, coord) = checkpointed_run(Some(interval));
            assert_eq!(r.records_in, base.records_in, "interval {interval}");
            assert_eq!(r.output_records, base.output_records, "interval {interval}");
            assert_eq!(r.windows_closed, base.windows_closed, "interval {interval}");
            assert!(!coord.samples().is_empty());
        }
    }

    /// More frequent barriers mean more checkpoints and at least as much
    /// simulated time; the overhead must stay bounded.
    #[test]
    fn overhead_scales_with_cadence() {
        let (base, _) = checkpointed_run(None);
        let (fast, c_fast) = checkpointed_run(Some(2));
        let (slow, c_slow) = checkpointed_run(Some(20));
        assert!(c_fast.samples().len() > c_slow.samples().len());
        // Checkpoints add work: simulated time never shrinks.
        assert!(fast.sim_secs >= base.sim_secs - 1e-12);
        assert!(slow.sim_secs >= base.sim_secs - 1e-12);
        // Overhead falls as the interval grows: sparse checkpoints must
        // beat dense ones, and at 20 bundles the cost is within 5%.
        assert!(
            fast.throughput_rps <= slow.throughput_rps * 1.01,
            "denser checkpoints cannot be faster: {} vs {}",
            fast.throughput_rps,
            slow.throughput_rps
        );
        assert!(
            slow.throughput_rps > 0.95 * base.throughput_rps,
            "checkpointing every 20 bundles must cost under 5%: {} vs {}",
            slow.throughput_rps,
            base.throughput_rps
        );
        // Snapshot bytes are real and visible in the store accounting.
        assert!(c_fast.samples().iter().all(|s| s.snapshot_bytes > 0));
        assert!(c_fast.store().total_bytes() > 0);
    }
}

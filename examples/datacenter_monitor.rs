//! Data-center analytics, the paper's motivating scenario from §1:
//! "compute the distribution of machine utilization and network request
//! arrival rate, and then join them by time."
//!
//! Two streams — per-machine CPU utilization samples and per-machine
//! request-rate samples — are temporally joined by machine id per window,
//! pairing each machine's utilization with its request rate.
//!
//! Run with: `cargo run --release --example datacenter_monitor`

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use streambox_hbm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machines = 100_000;
    // Stream L: (machine_id, cpu_util_percent, ts)
    let util = KvSource::new(21, machines, 1_000_000).with_value_range(100);
    // Stream R: (machine_id, requests_per_sec, ts)
    let reqs = KvSource::new(22, machines, 1_000_000).with_value_range(50_000);

    let pipeline = PipelineBuilder::new(WindowSpec::fixed(1_000_000_000))
        .windowed()
        .temporal_join(Col(0), Col(1))
        .build();

    let cfg = RunConfig {
        cores: 32,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 5_000,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let report = Engine::new(cfg).run_pair(util, reqs, pipeline, 30)?;

    println!(
        "joined {} utilization/request samples into {} correlated pairs \
         across {} windows ({:.2} M records/s)",
        report.records_in,
        report.output_records,
        report.windows_closed,
        report.throughput_mrps()
    );
    if let Some(b) = report.outputs.iter().find(|b| b.rows() > 0) {
        println!("sample correlated readings (machine, cpu%, req/s):");
        for r in 0..b.rows().min(5) {
            println!(
                "  machine {:>4}: {:>3}% CPU while serving {:>6} req/s",
                b.value(r, Col(0)),
                b.value(r, Col(1)),
                b.value(r, Col(2)),
            );
        }
    }
    Ok(())
}

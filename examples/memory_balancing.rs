//! Watch the demand-balance knob work (paper §5 / Figure 10): run the same
//! pipeline on a machine with progressively smaller HBM and observe the
//! knob shedding KPA allocations to DRAM as HBM capacity pressure rises.
//!
//! Run with: `cargo run --release --example memory_balancing`

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use streambox_hbm::prelude::*;

fn run_with_hbm(hbm_bytes: u64) -> Result<RunReport, Box<dyn std::error::Error>> {
    let mut machine = MachineConfig::knl();
    machine.hbm.capacity_bytes = hbm_bytes;
    machine.dram.capacity_bytes = 4 << 30;
    let cfg = RunConfig {
        machine,
        cores: 32,
        sender: SenderConfig {
            bundle_rows: 50_000,
            bundles_per_watermark: 20, // long watermark gaps stress HBM
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let source = KvSource::new(5, 10_000, 10_000_000);
    Ok(Engine::new(cfg).run(source, benchmarks::topk_per_key(3), 120)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>10}  {:>9}  {:>9}  {:>7}  {:>7}  {:>10}",
        "HBM cap", "peak use", "usage", "k_low", "k_high", "DRAM GB/s"
    );
    for hbm_mib in [64u64, 16, 6, 2] {
        let report = run_with_hbm(hbm_mib << 20)?;
        let last = report.samples.last().expect("samples recorded");
        println!(
            "{:>7} MiB  {:>5} MiB  {:>8.1}%  {:>7.2}  {:>7.2}  {:>10.1}",
            hbm_mib,
            report.hbm_peak_used_bytes >> 20,
            100.0 * report.hbm_peak_used_bytes as f64 / ((hbm_mib << 20) as f64),
            last.k_low,
            last.k_high,
            report.peak_dram_bw_gbps,
        );
    }
    println!(
        "\nAs HBM shrinks, the knob (k_low, then k_high) drops below 1.0,\n\
         moving new KPAs to DRAM and raising DRAM bandwidth usage —\n\
         the dynamic of the paper's Figure 10."
    );
    Ok(())
}

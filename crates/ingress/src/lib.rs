//! Data ingress for StreamBox-HBM: workload generators, NIC-rate-limited
//! ingestion and data-format parsers.
//!
//! The paper ingests streams from a separate *Sender* machine over 40 Gb/s
//! InfiniBand RDMA (bundles delivered into pre-allocated buffers) or 10 GbE
//! ZeroMQ. Neither NIC exists here, so ingestion is modelled by a
//! [`NicModel`] token rate: each bundle carries the simulated time the wire
//! transfer takes, and the engine's pipeline throughput plateaus at the NIC
//! payload rate exactly as in Figures 7 and 8 (the red "ingestion limit"
//! lines).
//!
//! Generators reproduce the paper's workloads:
//! * [`KvSource`] — the 3-column `key,value,ts` records of benchmarks 1–7,
//!   with a 4-column secondary-key variant for benchmarks 8–9.
//! * [`YsbSource`] — the Yahoo Streaming Benchmark's 7-column ad events.
//! * [`PowerGridSource`] — per-plug power samples in the shape of the DEBS
//!   2014 grand challenge used by the Power Grid benchmark.
//!
//! The [`parse`] module implements the three ingestion formats of Figure 11
//! (JSON, protobuf-style binary, and plain text) with real encoders and
//! decoders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod gen;
mod nic;
pub mod parse;
mod sender;

pub use format::{
    IngestFormat, JSON_CYCLES_PER_RECORD, PROTO_CYCLES_PER_RECORD, TEXT_CYCLES_PER_RECORD,
};
pub use gen::{KvSource, Partitioned, PowerGridSource, Source, YsbSource, ZipfKeys};
pub use nic::{LinkModel, NicModel};
pub use sender::{IngressEvent, Sender, SenderConfig};

//! `cargo bench --bench ablation_design` — design-choice ablations
//! (early aggregation, bundle size, fused extract).

fn main() {
    let out = sbx_bench::ablation::run();
    sbx_bench::save_experiment("ablation_design", &out);
}

//! Compound (declarative) operators, built from the KPA streaming
//! primitives exactly as the paper's Table 1 prescribes:
//!
//! | Operator | Grouping primitives | Reduction |
//! |---|---|---|
//! | [`Filter`] / [`Sample`] (ParDo) | Select | — |
//! | [`MapRecords`] (producing ParDo) | — | Unkeyed, emits to DRAM |
//! | [`Union`] | — (stream merge) | — |
//! | [`Cogroup`] | Sort, Merge | Keyed per side |
//! | [`ExternalJoin`] | KeySwap (in-place key update) | — |
//! | [`WindowInto`] | Partition (by timestamp) | — |
//! | [`KeyedAggregate`] | Sort, Merge | Keyed |
//! | [`AvgAll`] | — | Unkeyed |
//! | [`TemporalJoin`] | Sort, Merge, Join | — |
//! | [`WindowedFilter`] | Sort, Select | Unkeyed |
//! | [`PowerGrid`] | Sort, Merge | Keyed + Unkeyed |

mod aggregate;
mod avg_all;
mod cogroup;
mod external_join;
mod filter;
mod grouping;
mod pardo;
mod power_grid;
mod temporal_join;
mod union;
mod window;
mod windowed_filter;

pub use aggregate::{AggKind, KeyedAggregate};
pub use avg_all::AvgAll;
pub use cogroup::{Cogroup, SideAgg};
pub use external_join::ExternalJoin;
pub use filter::Filter;
pub use grouping::GroupingSpec;
pub use pardo::{MapRecords, Sample};
pub use power_grid::PowerGrid;
pub use temporal_join::TemporalJoin;
pub use union::Union;
pub use window::WindowInto;
pub use windowed_filter::WindowedFilter;

use sbx_records::{EventTime, Watermark, WindowId, WindowSpec};

/// Windows whose end lies at or before `wm` — the windows a watermark
/// closes — among the keys of a state map, in ascending order.
pub(crate) fn closable<V>(
    state: &std::collections::BTreeMap<WindowId, V>,
    spec: &WindowSpec,
    wm: Watermark,
) -> Vec<WindowId> {
    state
        .keys()
        .copied()
        .take_while(|&w| wm.closes(spec.end(w)))
        // sbx-lint: allow(raw-alloc, window-id list bounded by open windows)
        .collect()
}

/// A single-message output batch — the common result shape of the
/// stateless operators' `apply`.
pub(crate) fn single(msg: crate::Message) -> Vec<crate::Message> {
    // sbx-lint: allow(raw-alloc, one-element routing vector; record data stays in pools)
    vec![msg]
}

/// The window-start timestamp used in output records.
pub(crate) fn window_start(spec: &WindowSpec, w: WindowId) -> EventTime {
    spec.start(w)
}

/// Late-data guard shared by the stateful operators: once a watermark has
/// closed a window, records for it are *late* (the source broke its
/// watermark promise, or an upstream reordered across watermarks). Late
/// data is dropped and counted — re-opening closed state would emit the
/// same window twice.
#[derive(Debug, Default)]
pub(crate) struct LateGuard {
    horizon: Option<Watermark>,
    dropped: u64,
}

impl LateGuard {
    /// Records a watermark: windows ending at or before it are closed.
    pub(crate) fn observe(&mut self, wm: Watermark) {
        if self.horizon.is_none_or(|h| wm > h) {
            self.horizon = Some(wm);
        }
    }

    /// Whether window `w` is already closed; counts `records` as dropped
    /// when it is.
    pub(crate) fn is_late(&mut self, spec: &WindowSpec, w: WindowId, records: usize) -> bool {
        let late = self.horizon.is_some_and(|h| h.closes(spec.end(w)));
        if late {
            self.dropped += records as u64;
        }
        late
    }

    /// Total records dropped as late.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The highest watermark observed so far, if any. Captured by operator
    /// snapshots so recovery preserves late-data decisions.
    pub(crate) fn horizon(&self) -> Option<Watermark> {
        self.horizon
    }
}

#[cfg(test)]
mod late_tests {
    use super::*;

    #[test]
    fn late_guard_tracks_horizon_and_counts() {
        let spec = WindowSpec::fixed(10);
        let mut g = LateGuard::default();
        // No watermark yet: nothing is late.
        assert!(!g.is_late(&spec, WindowId(0), 5));
        g.observe(Watermark::from(20)); // closes windows 0 and 1
        assert!(g.is_late(&spec, WindowId(0), 3));
        assert!(g.is_late(&spec, WindowId(1), 2));
        assert!(!g.is_late(&spec, WindowId(2), 4));
        assert_eq!(g.dropped(), 5);
        // Watermarks never regress.
        g.observe(Watermark::from(5));
        assert!(!g.is_late(&spec, WindowId(2), 1));
    }
}

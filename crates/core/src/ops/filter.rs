use sbx_records::Col;

use crate::ops::single;
use crate::{EngineError, Message, OpCtx, Operator, StatelessOperator, StreamData};

/// A stateless `ParDo` that keeps records whose `col` value satisfies a
/// predicate (paper §4.2: non-producing ParDos execute as `Select` over
/// KPAs; on raw bundles the Select is fused with `Extract`).
pub struct Filter {
    col: Col,
    pred: Box<dyn Fn(u64) -> bool + Send + Sync>,
}

impl Filter {
    /// Keeps records where `pred(record[col])` holds.
    pub fn new(col: Col, pred: impl Fn(u64) -> bool + Send + Sync + 'static) -> Self {
        Filter {
            col,
            // sbx-lint: allow(raw-alloc, one-time operator construction, not per-bundle work)
            pred: Box::new(pred),
        }
    }
}

impl std::fmt::Debug for Filter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Filter").field("col", &self.col).finish()
    }
}

impl Operator for Filter {
    fn name(&self) -> &'static str {
        StatelessOperator::name(self)
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        self.apply(ctx, msg)
    }
}

impl StatelessOperator for Filter {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn apply(&self, ctx: &mut OpCtx<'_>, msg: Message) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data { port, data } => {
                let out = match data {
                    StreamData::Bundle(b) => {
                        StreamData::Kpa(ctx.extract_select(&b, self.col, &self.pred)?)
                    }
                    StreamData::Kpa(mut kpa) => {
                        if kpa.resident() != self.col {
                            ctx.charged(16, |e| kpa.key_swap(e, self.col));
                        }
                        let (_, prio) = ctx.place();
                        let selected = ctx.charged(16, |e| kpa.select(e, prio, &self.pred))?;
                        StreamData::Kpa(selected)
                    }
                    StreamData::Windowed(w, kpa) => {
                        let (_, prio) = ctx.place();
                        let mut kpa = kpa;
                        if kpa.resident() != self.col {
                            ctx.charged(16, |e| kpa.key_swap(e, self.col));
                        }
                        let selected = ctx.charged(16, |e| kpa.select(e, prio, &self.pred))?;
                        StreamData::Windowed(w, selected)
                    }
                };
                Ok(single(Message::Data { port, data: out }))
            }
            other => Ok(single(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DemandBalancer, EngineMode, ImpactTag};
    use sbx_records::{RecordBundle, Schema, Watermark};
    use sbx_simmem::{MachineConfig, MemEnv};

    fn setup() -> (MemEnv, DemandBalancer) {
        (
            MemEnv::new(MachineConfig::knl().scaled(0.01)),
            DemandBalancer::new(),
        )
    }

    #[test]
    fn filter_on_bundle_extracts_survivors() {
        let (env, mut bal) = setup();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let flat: Vec<u64> = (0..10u64).flat_map(|i| [i, i, 0]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let mut op = Filter::new(Col(0), |k| k < 3);
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap();
        assert_eq!(out.len(), 1);
        match &out[0] {
            Message::Data {
                data: StreamData::Kpa(kpa),
                port: 0,
            } => {
                assert_eq!(kpa.keys(), &[0, 1, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn filter_on_kpa_swaps_to_filter_column() {
        let (env, mut bal) = setup();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let flat: Vec<u64> = (0..6u64).flat_map(|i| [i, 100 + i, 0]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let kpa = ctx.extract(&b, Col(0)).unwrap();
        // Filter on the *value* column: requires a KeySwap first.
        let mut op = Filter::new(Col(1), |v| v >= 104);
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Kpa(kpa)))
            .unwrap();
        match &out[0] {
            Message::Data {
                data: StreamData::Kpa(kpa),
                ..
            } => {
                assert_eq!(kpa.keys(), &[104, 105]);
                assert_eq!(kpa.resident(), Col(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn watermarks_pass_through() {
        let (env, mut bal) = setup();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::Urgent);
        let mut op = Filter::new(Col(0), |_| true);
        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(7)))
            .unwrap();
        assert!(matches!(out[0], Message::Watermark(w) if w == Watermark::from(7)));
    }

    #[test]
    fn port_is_preserved() {
        let (env, mut bal) = setup();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 2, 3]).unwrap();
        let mut op = Filter::new(Col(0), |_| true);
        let out = op
            .on_message(
                &mut ctx,
                Message::Data {
                    port: 1,
                    data: StreamData::Bundle(b),
                },
            )
            .unwrap();
        assert!(matches!(out[0], Message::Data { port: 1, .. }));
    }
}

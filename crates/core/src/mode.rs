use std::fmt;

/// Which memory-management configuration the engine runs under — the four
/// axes of the paper's Figure 9 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Full StreamBox-HBM: KPAs explicitly placed by the demand-balance
    /// knob, grouping on HBM.
    #[default]
    Hybrid,
    /// `StreamBox-HBM Caching`: KPA mechanisms retained, but placement is
    /// left to a hardware-managed cache — every KPA is first instantiated
    /// in DRAM and migrated, costing extra copies (paper: up to 23% lower
    /// throughput).
    CachingKpa,
    /// `StreamBox-HBM DRAM`: hybrid memory disabled; every KPA lives in
    /// DRAM, which saturates DRAM bandwidth (paper: −47% throughput).
    DramOnly,
    /// `StreamBox-HBM Caching NoKPA`: no extraction — grouping moves *full
    /// records* under a hardware-managed cache; this is StreamBox with
    /// sequential algorithms on cache-mode memory (paper: up to 7x slower).
    CachingNoKpa,
}

impl EngineMode {
    /// All modes, in Figure 9's legend order.
    pub const ALL: [EngineMode; 4] = [
        EngineMode::Hybrid,
        EngineMode::CachingKpa,
        EngineMode::DramOnly,
        EngineMode::CachingNoKpa,
    ];
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineMode::Hybrid => "StreamBox-HBM",
            EngineMode::CachingKpa => "StreamBox-HBM Caching",
            EngineMode::DramOnly => "StreamBox-HBM DRAM",
            EngineMode::CachingNoKpa => "StreamBox-HBM Caching NoKPA",
        };
        f.write_str(s)
    }
}

/// Performance-impact tag of a task (paper §5): how soon the window the
/// task contributes to will be externalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ImpactTag {
    /// On the critical path of pipeline output (e.g. window-close
    /// aggregation). Always allocates from the reserved HBM pool.
    Urgent,
    /// Externalized in the near future (within the next two windows).
    High,
    /// Externalized in the far future.
    Low,
}

impl ImpactTag {
    /// Tags a task by how many windows ahead of the next-to-close window
    /// its data lies. `0` = the window currently being closed.
    pub fn from_window_distance(distance: u64) -> ImpactTag {
        match distance {
            0 => ImpactTag::Urgent,
            1 | 2 => ImpactTag::High,
            _ => ImpactTag::Low,
        }
    }
}

impl fmt::Display for ImpactTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ImpactTag::Urgent => "urgent",
            ImpactTag::High => "high",
            ImpactTag::Low => "low",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_distance_bands_match_paper() {
        assert_eq!(ImpactTag::from_window_distance(0), ImpactTag::Urgent);
        assert_eq!(ImpactTag::from_window_distance(1), ImpactTag::High);
        assert_eq!(ImpactTag::from_window_distance(2), ImpactTag::High);
        assert_eq!(ImpactTag::from_window_distance(3), ImpactTag::Low);
        assert_eq!(ImpactTag::from_window_distance(100), ImpactTag::Low);
    }

    #[test]
    fn urgent_orders_before_low() {
        assert!(ImpactTag::Urgent < ImpactTag::High);
        assert!(ImpactTag::High < ImpactTag::Low);
    }

    #[test]
    fn mode_display_matches_figure9_legend() {
        assert_eq!(EngineMode::Hybrid.to_string(), "StreamBox-HBM");
        assert_eq!(
            EngineMode::CachingNoKpa.to_string(),
            "StreamBox-HBM Caching NoKPA"
        );
        assert_eq!(EngineMode::ALL.len(), 4);
    }
}

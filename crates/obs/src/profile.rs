//! Critical-path analysis over the exported span DAG (DESIGN.md §10).
//!
//! The engine records one [`Span`](crate::Span) per operator invocation;
//! availability edges are exact in simulated time (a child's `start_ns` is
//! its parent's `start_ns + dur_ns`), so the longest chain through the DAG
//! is the run's simulated critical path. This module finds that chain for
//! the whole run and per watermark round, and attributes *critical* time
//! (spent on the chain) versus *slack* (operator work off the chain) per
//! operator — and, given the run's metrics dump, per KPA primitive
//! (extract/sort/merge/materialize), by splitting each operator's critical
//! time proportionally to its `op.NN.Name.*_bytes` counters.
//!
//! Everything here is a pure function of the exported artifacts, so the
//! rendered report is byte-identical across same-seed runs.

// sbx-lint: out-of-scope(raw-alloc, profile aggregation at export time)
use std::collections::BTreeMap;

use crate::json::{parse_flat_object, JsonValue};
use crate::metrics::MetricsDump;
use crate::trace::Span;

/// An owned span record, as parsed from a span JSONL export (or converted
/// from an in-memory [`Span`]). Field meanings match [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Task identity (ids are allocated in dependency order).
    pub id: u64,
    /// Parent span along the operator chain, if any.
    pub parent: Option<u64>,
    /// Operator name.
    pub name: String,
    /// Category: `task`, `watermark`, `barrier`, or `close`.
    pub cat: String,
    /// Operator index in the pipeline.
    pub lane: u64,
    /// Watermark round the invocation ran in.
    pub round: u64,
    /// Checkpoint epoch the invocation ran in (0 before the first barrier).
    pub epoch: u64,
    /// Simulated start time, nanoseconds.
    pub start_ns: u64,
    /// Simulated duration, nanoseconds.
    pub dur_ns: u64,
    /// Records entering the invocation.
    pub records_in: u64,
    /// Records produced by the invocation.
    pub records_out: u64,
}

impl SpanRec {
    /// Simulated end time of the invocation, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// Converts an in-memory [`Span`] into an owned record.
    pub fn from_span(s: &Span) -> SpanRec {
        SpanRec {
            id: s.id,
            parent: s.parent,
            name: s.name.to_owned(),
            cat: s.cat.to_owned(),
            lane: s.lane,
            round: s.round,
            epoch: s.epoch,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            records_in: s.records_in,
            records_out: s.records_out,
        }
    }
}

/// Converts a slice of in-memory spans into owned records.
pub fn spans_to_recs(spans: &[Span]) -> Vec<SpanRec> {
    spans.iter().map(SpanRec::from_span).collect()
}

/// Parses a span JSONL export (the `TraceCollector::export_jsonl` format)
/// back into owned records, in file order.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_spans_jsonl(text: &str) -> Result<Vec<SpanRec>, String> {
    let mut out = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let pairs = parse_flat_object(line).map_err(|e| format!("line {}: {e}", line_no + 1))?;
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let kind = get("type").and_then(JsonValue::as_str).unwrap_or("");
        if kind != "span" {
            return Err(format!("line {}: not a span line ({kind:?})", line_no + 1));
        }
        let num = |key: &str| get(key).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let text_of = |key: &str| {
            get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_owned()
        };
        out.push(SpanRec {
            id: num("id"),
            parent: get("parent").and_then(JsonValue::as_f64).map(|p| p as u64),
            name: text_of("name"),
            cat: text_of("cat"),
            lane: num("lane"),
            round: num("round"),
            epoch: num("epoch"),
            start_ns: num("start_ns"),
            dur_ns: num("dur_ns"),
            records_in: num("records_in"),
            records_out: num("records_out"),
        });
    }
    Ok(out)
}

/// One step of the critical chain, root first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Span id of the invocation.
    pub id: u64,
    /// Operator name.
    pub name: String,
    /// Operator index in the pipeline.
    pub lane: u64,
    /// Watermark round.
    pub round: u64,
    /// Simulated start, nanoseconds.
    pub start_ns: u64,
    /// Simulated duration, nanoseconds.
    pub dur_ns: u64,
}

/// Critical-versus-slack attribution for one operator (keyed by lane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorAttribution {
    /// Operator index in the pipeline.
    pub lane: u64,
    /// Operator name.
    pub name: String,
    /// Nanoseconds of this operator's work on the critical chain.
    pub critical_ns: u64,
    /// Nanoseconds of this operator's work across all invocations.
    pub total_ns: u64,
    /// Invocations on the critical chain.
    pub critical_invocations: u64,
    /// Total invocations.
    pub invocations: u64,
}

impl OperatorAttribution {
    /// Operator time off the critical chain (parallelizable slack).
    pub fn slack_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.critical_ns)
    }
}

/// The longest chain within one watermark round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPath {
    /// Round index (0-based).
    pub round: u64,
    /// Total simulated nanoseconds on the round's longest chain.
    pub critical_ns: u64,
    /// Steps on that chain.
    pub steps: u64,
    /// Simulated end of the chain, nanoseconds.
    pub end_ns: u64,
}

/// Per-primitive split of the critical time (see
/// [`CriticalPath::attribute_primitives`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitiveAttribution {
    /// Primitive label (`extract`, `sort`, `merge`, `materialize`) or
    /// `engine` for time not covered by primitive byte counters.
    pub label: String,
    /// Critical nanoseconds attributed to this primitive.
    pub critical_ns: u64,
    /// KPA bytes the primitive moved on critical-path operators.
    pub bytes: u64,
}

/// Labels of the KPA primitive byte counters (`op.NN.Name.<label>_bytes`),
/// mirroring `sbx_kpa::PrimGroup` without depending on it. Two-way merge
/// and sorted-merge join both account under `merge`.
pub const PRIMITIVE_LABELS: [&str; 4] = ["extract", "sort", "merge", "materialize"];

/// Result of a critical-path analysis over one run's span DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total simulated nanoseconds on the whole-run critical chain.
    pub critical_ns: u64,
    /// Simulated end of the run's last span, nanoseconds.
    pub makespan_ns: u64,
    /// Total simulated nanoseconds across all spans (the serial work).
    pub total_work_ns: u64,
    /// The whole-run critical chain, root first.
    pub steps: Vec<PathStep>,
    /// Per-operator attribution, descending by critical time (ties by
    /// lane), covering every operator that recorded a span.
    pub per_operator: Vec<OperatorAttribution>,
    /// Longest chain per watermark round, ascending by round.
    pub per_round: Vec<RoundPath>,
}

/// Walks parent links from the span with the latest end time (ties broken
/// toward the smallest id) to its root and returns the chain, root first.
fn longest_chain<'a>(
    by_id: &BTreeMap<u64, &'a SpanRec>,
    spans: impl Iterator<Item = &'a SpanRec>,
) -> Vec<&'a SpanRec> {
    let mut tip: Option<&SpanRec> = None;
    for s in spans {
        let better = match tip {
            None => true,
            Some(t) => s.end_ns() > t.end_ns() || (s.end_ns() == t.end_ns() && s.id < t.id),
        };
        if better {
            tip = Some(s);
        }
    }
    let mut chain = Vec::new();
    let mut cur = tip;
    while let Some(s) = cur {
        chain.push(s);
        // Ids are allocated in dependency order (parent id < child id), so
        // the walk terminates even on corrupted inputs.
        cur = s
            .parent
            .and_then(|p| by_id.get(&p).copied())
            .filter(|p| p.id < s.id);
    }
    chain.reverse();
    chain
}

impl CriticalPath {
    /// Runs the analysis over `spans` (any order; typically a parsed span
    /// JSONL export). Empty input yields an all-zero result.
    pub fn compute(spans: &[SpanRec]) -> CriticalPath {
        let mut by_id: BTreeMap<u64, &SpanRec> = BTreeMap::new();
        for s in spans {
            by_id.entry(s.id).or_insert(s);
        }
        let chain = longest_chain(&by_id, spans.iter());
        let critical_ns = chain.iter().map(|s| s.dur_ns).sum();
        let makespan_ns = spans.iter().map(SpanRec::end_ns).max().unwrap_or(0);
        let total_work_ns = spans.iter().map(|s| s.dur_ns).sum();

        // Per-operator totals keyed by lane; the chain marks critical time.
        let mut ops: BTreeMap<u64, OperatorAttribution> = BTreeMap::new();
        for s in spans {
            let e = ops.entry(s.lane).or_insert_with(|| OperatorAttribution {
                lane: s.lane,
                name: s.name.clone(),
                critical_ns: 0,
                total_ns: 0,
                critical_invocations: 0,
                invocations: 0,
            });
            e.total_ns += s.dur_ns;
            e.invocations += 1;
        }
        for s in &chain {
            if let Some(e) = ops.get_mut(&s.lane) {
                e.critical_ns += s.dur_ns;
                e.critical_invocations += 1;
            }
        }
        let mut per_operator: Vec<OperatorAttribution> = ops.into_values().collect();
        per_operator.sort_by(|a, b| b.critical_ns.cmp(&a.critical_ns).then(a.lane.cmp(&b.lane)));

        // Longest chain per round: availability edges never cross rounds
        // (chains are per driven message), so a per-round restriction of
        // the same walk is exact.
        let mut rounds: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
        for s in spans {
            rounds.entry(s.round).or_default().push(s);
        }
        let per_round = rounds
            .iter()
            .map(|(&round, members)| {
                let chain = longest_chain(&by_id, members.iter().copied());
                RoundPath {
                    round,
                    critical_ns: chain.iter().map(|s| s.dur_ns).sum(),
                    steps: chain.len() as u64,
                    end_ns: chain.last().map_or(0, |s| s.end_ns()),
                }
            })
            .collect();

        CriticalPath {
            critical_ns,
            makespan_ns,
            total_work_ns,
            steps: chain
                .iter()
                .map(|s| PathStep {
                    id: s.id,
                    name: s.name.clone(),
                    lane: s.lane,
                    round: s.round,
                    start_ns: s.start_ns,
                    dur_ns: s.dur_ns,
                })
                .collect(),
            per_operator,
            per_round,
        }
    }

    /// Splits the critical time of each critical-path operator across KPA
    /// primitives, proportionally to the operator's
    /// `op.<lane:02>.<name>.<primitive>_bytes` counters in `dump`. Time in
    /// operators with no primitive bytes (or the unsplit remainder of a
    /// rounding step) is attributed to `engine`.
    pub fn attribute_primitives(&self, dump: &MetricsDump) -> Vec<PrimitiveAttribution> {
        let mut split: Vec<PrimitiveAttribution> = PRIMITIVE_LABELS
            .iter()
            .map(|&label| PrimitiveAttribution {
                label: label.to_owned(),
                critical_ns: 0,
                bytes: 0,
            })
            .collect();
        let mut engine_ns = 0u64;
        for op in &self.per_operator {
            if op.critical_ns == 0 {
                continue;
            }
            let prefix = format!("op.{:02}.{}", op.lane, op.name);
            let bytes: Vec<u64> = PRIMITIVE_LABELS
                .iter()
                .map(|l| dump.counter(&format!("{prefix}.{l}_bytes")).unwrap_or(0))
                .collect();
            let total_bytes: u64 = bytes.iter().sum();
            if total_bytes == 0 {
                engine_ns += op.critical_ns;
                continue;
            }
            let mut assigned = 0u64;
            for (slot, &b) in split.iter_mut().zip(bytes.iter()) {
                // Integer proportional split; the truncation remainder is
                // engine time, keeping the totals exact.
                let ns = ((op.critical_ns as u128 * b as u128) / total_bytes as u128) as u64;
                slot.critical_ns += ns;
                slot.bytes += b;
                assigned += ns;
            }
            engine_ns += op.critical_ns.saturating_sub(assigned);
        }
        split.push(PrimitiveAttribution {
            label: "engine".to_owned(),
            critical_ns: engine_ns,
            bytes: 0,
        });
        split
    }

    /// Renders a deterministic text report: the chain summary, the top-`k`
    /// operators by critical time, the top-`k` rounds by critical time, and
    /// (when `dump` is given) the per-primitive split.
    pub fn render(&self, k: usize, dump: Option<&MetricsDump>) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} steps, {:.3} ms of {:.3} ms makespan ({:.3} ms total work)\n",
            self.steps.len(),
            ms(self.critical_ns),
            ms(self.makespan_ns),
            ms(self.total_work_ns),
        ));
        if self.critical_ns == 0 {
            out.push_str("  (no spans)\n");
            return out;
        }
        out.push_str(&format!(
            "  per-operator (top {} of {} by critical time):\n",
            k.min(self.per_operator.len()),
            self.per_operator.len()
        ));
        for op in self.per_operator.iter().take(k) {
            out.push_str(&format!(
                "    lane {:02} {:<18} crit {:>9.3} ms ({:>5.1}%)  slack {:>9.3} ms  inv {}/{}\n",
                op.lane,
                op.name,
                ms(op.critical_ns),
                100.0 * op.critical_ns as f64 / self.critical_ns as f64,
                ms(op.slack_ns()),
                op.critical_invocations,
                op.invocations,
            ));
        }
        let mut rounds: Vec<&RoundPath> = self.per_round.iter().collect();
        rounds.sort_by(|a, b| {
            b.critical_ns
                .cmp(&a.critical_ns)
                .then(a.round.cmp(&b.round))
        });
        out.push_str(&format!(
            "  per-round (top {} of {} by critical time):\n",
            k.min(rounds.len()),
            rounds.len()
        ));
        for r in rounds.iter().take(k) {
            out.push_str(&format!(
                "    round {:>4}  crit {:>9.3} ms in {:>3} steps, ends at {:.3} ms\n",
                r.round,
                ms(r.critical_ns),
                r.steps,
                ms(r.end_ns),
            ));
        }
        if let Some(dump) = dump {
            out.push_str("  per-primitive (critical time split by KPA bytes):\n");
            for p in self.attribute_primitives(dump) {
                if p.critical_ns == 0 && p.bytes == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    {:<12} crit {:>9.3} ms ({:>5.1}%)  {:>12} KPA bytes\n",
                    p.label,
                    ms(p.critical_ns),
                    100.0 * p.critical_ns as f64 / self.critical_ns as f64,
                    p.bytes,
                ));
            }
        }
        out.push_str(&format!(
            "  chain (lane:name @start +dur ms): {}\n",
            self.steps
                .iter()
                .map(|s| format!(
                    "{:02}:{} @{:.3} +{:.3}",
                    s.lane,
                    s.name,
                    ms(s.start_ns),
                    ms(s.dur_ns)
                ))
                .collect::<Vec<_>>()
                .join(" -> "),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, lane: u64, round: u64, start: u64, dur: u64) -> SpanRec {
        SpanRec {
            id,
            parent,
            name: format!("op{lane}"),
            cat: "task".to_owned(),
            lane,
            round,
            epoch: 0,
            start_ns: start,
            dur_ns: dur,
            records_in: 10,
            records_out: 10,
        }
    }

    /// Two chains; the slower one (via span 3) is critical.
    fn diamond() -> Vec<SpanRec> {
        vec![
            rec(0, None, 0, 0, 0, 100),
            rec(1, Some(0), 1, 0, 100, 50),
            rec(2, None, 0, 0, 0, 80),
            rec(3, Some(2), 1, 0, 80, 200),
        ]
    }

    #[test]
    fn picks_the_longest_chain() {
        let cp = CriticalPath::compute(&diamond());
        assert_eq!(cp.makespan_ns, 280);
        assert_eq!(cp.critical_ns, 280);
        assert_eq!(cp.total_work_ns, 430);
        let ids: Vec<u64> = cp.steps.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn attributes_slack_per_operator() {
        let cp = CriticalPath::compute(&diamond());
        let lane0 = cp.per_operator.iter().find(|o| o.lane == 0).unwrap();
        let lane1 = cp.per_operator.iter().find(|o| o.lane == 1).unwrap();
        assert_eq!(lane0.critical_ns, 80);
        assert_eq!(lane0.slack_ns(), 100);
        assert_eq!(lane1.critical_ns, 200);
        assert_eq!(lane1.slack_ns(), 50);
        // Sorted descending by critical time.
        assert_eq!(cp.per_operator[0].lane, 1);
    }

    #[test]
    fn per_round_chains_are_independent() {
        let mut spans = diamond();
        spans.push(rec(4, None, 0, 1, 1000, 300));
        spans.push(rec(5, Some(4), 1, 1, 1300, 10));
        let cp = CriticalPath::compute(&spans);
        assert_eq!(cp.per_round.len(), 2);
        assert_eq!(cp.per_round[0].critical_ns, 280);
        assert_eq!(cp.per_round[1].critical_ns, 310);
        assert_eq!(cp.per_round[1].steps, 2);
        // Whole-run chain is round 1's (latest end).
        assert_eq!(cp.steps.last().map(|s| s.id), Some(5));
    }

    #[test]
    fn ties_break_toward_the_smallest_id() {
        let spans = vec![rec(0, None, 0, 0, 0, 100), rec(1, None, 0, 0, 0, 100)];
        let cp = CriticalPath::compute(&spans);
        assert_eq!(cp.steps.first().map(|s| s.id), Some(0));
    }

    #[test]
    fn empty_input_is_all_zero() {
        let cp = CriticalPath::compute(&[]);
        assert_eq!(cp.critical_ns, 0);
        assert!(cp.steps.is_empty() && cp.per_round.is_empty());
        assert!(cp.render(5, None).contains("no spans"));
    }

    #[test]
    fn primitive_split_follows_byte_counters() {
        let reg = crate::MetricsRegistry::active();
        reg.counter("op.01.op1.sort_bytes").add(300);
        reg.counter("op.01.op1.merge_bytes").add(100);
        let cp = CriticalPath::compute(&diamond());
        let prims = cp.attribute_primitives(&reg.snapshot());
        let get = |l: &str| prims.iter().find(|p| p.label == l).unwrap().critical_ns;
        // lane 1 critical = 200 ns, split 3:1 sort:merge; lane 0 (80 ns,
        // no counters) goes to engine.
        assert_eq!(get("sort"), 150);
        assert_eq!(get("merge"), 50);
        assert_eq!(get("engine"), 80);
        let total: u64 = prims.iter().map(|p| p.critical_ns).sum();
        assert_eq!(total, cp.critical_ns);
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let t = crate::TraceCollector::active();
        t.record(Span {
            id: 3,
            parent: Some(1),
            name: "KeyedAggregate",
            cat: "close",
            lane: 1,
            round: 2,
            epoch: 1,
            start_ns: 500,
            dur_ns: 40,
            records_in: 9,
            records_out: 1,
        });
        let parsed = parse_spans_jsonl(&t.export_jsonl()).unwrap();
        assert_eq!(parsed, spans_to_recs(&t.spans()));
        assert_eq!(parsed[0].round, 2);
        assert!(parse_spans_jsonl("{\"type\":\"counter\",\"name\":\"x\"}").is_err());
        assert!(parse_spans_jsonl("nope").is_err());
    }
}

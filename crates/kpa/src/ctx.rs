use sbx_pool::WorkerPool;
use sbx_simmem::{AccessProfile, MemEnv, MemKind};

/// Primitive groups the observability layer breaks KPA byte traffic down by
/// (paper Table 2 / DESIGN.md §10). Primitives outside these groups (select,
/// key-swap, partition, reduce, hash, join) are charged but not grouped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimGroup {
    /// Extract / extract-fused: building KPAs out of record bundles.
    Extract,
    /// In-place KPA sort.
    Sort,
    /// Two-way and multi-way KPA merge.
    Merge,
    /// Materializing a KPA back into a record bundle.
    Materialize,
}

impl PrimGroup {
    /// Number of groups (size of a tally array).
    pub const COUNT: usize = 4;

    /// Dense index for per-group tables.
    pub fn index(self) -> usize {
        match self {
            PrimGroup::Extract => 0,
            PrimGroup::Sort => 1,
            PrimGroup::Merge => 2,
            PrimGroup::Materialize => 3,
        }
    }

    /// Metric-name label (`op.<idx>.<name>.<label>_bytes`).
    pub fn label(self) -> &'static str {
        match self {
            PrimGroup::Extract => "extract",
            PrimGroup::Sort => "sort",
            PrimGroup::Merge => "merge",
            PrimGroup::Materialize => "materialize",
        }
    }
}

/// Execution context threaded through every primitive: access to the
/// hybrid-memory environment plus an accumulator for the task's
/// [`AccessProfile`].
///
/// The engine creates one `ExecCtx` per scheduled task, runs the task's
/// primitives, then takes the accumulated profile to (a) charge the
/// bandwidth monitor over the task's simulated execution interval and
/// (b) record the task in the trace replayed by the fluid simulator.
///
/// # Example
///
/// ```
/// use sbx_kpa::ExecCtx;
/// use sbx_simmem::{AccessProfile, MachineConfig, MemEnv, MemKind};
///
/// let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
/// let mut ctx = ExecCtx::new(&env);
/// ctx.charge(&AccessProfile::new().seq(MemKind::Hbm, 128.0));
/// let p = ctx.take_profile();
/// assert_eq!(p.seq_bytes[MemKind::Hbm.index()], 128.0);
/// assert_eq!(ctx.take_profile(), AccessProfile::new());
/// ```
#[derive(Debug)]
pub struct ExecCtx {
    env: MemEnv,
    profile: AccessProfile,
    /// Bytes moved per [`PrimGroup`], drained by the engine into per-operator
    /// counters after each invocation. Fixed-size: no allocation on the hot
    /// path.
    tally: [f64; PrimGroup::COUNT],
    /// Worker pool the grouping kernels fan out on; serial by default.
    pool: WorkerPool,
}

impl ExecCtx {
    /// A fresh context over `env` with an empty profile and a serial
    /// worker pool (primitives without an explicit thread count run on
    /// the calling thread).
    pub fn new(env: &MemEnv) -> Self {
        Self::with_pool(env, WorkerPool::serial())
    }

    /// A fresh context over `env` drawing kernel parallelism from `pool`
    /// (the engine shares one pool across every task's context).
    pub fn with_pool(env: &MemEnv, pool: WorkerPool) -> Self {
        ExecCtx {
            env: env.clone(),
            profile: AccessProfile::new(),
            tally: [0.0; PrimGroup::COUNT],
            pool,
        }
    }

    /// The hybrid-memory environment.
    pub fn env(&self) -> &MemEnv {
        &self.env
    }

    /// The worker pool grouping kernels (sort/merge/join) fan out on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Accumulates `p` into the task profile.
    pub fn charge(&mut self, p: &AccessProfile) {
        self.profile = self.profile.merge(p);
    }

    /// Accumulates `p` and attributes its byte traffic (across both tiers)
    /// to the primitive group `group` for per-operator metrics.
    pub fn charge_as(&mut self, group: PrimGroup, p: &AccessProfile) {
        self.tally[group.index()] += p.bytes_on(MemKind::Hbm) + p.bytes_on(MemKind::Dram);
        self.charge(p);
    }

    /// Returns bytes tallied per [`PrimGroup`] since the last take,
    /// resetting the tally.
    pub fn take_tally(&mut self) -> [f64; PrimGroup::COUNT] {
        std::mem::take(&mut self.tally)
    }

    /// Returns the accumulated profile, resetting the accumulator.
    pub fn take_profile(&mut self) -> AccessProfile {
        std::mem::take(&mut self.profile)
    }

    /// The profile accumulated so far, without resetting.
    pub fn profile(&self) -> &AccessProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_simmem::{MachineConfig, MemKind};

    #[test]
    fn charges_accumulate_until_taken() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
        let mut ctx = ExecCtx::new(&env);
        ctx.charge(&AccessProfile::new().cpu(10.0));
        ctx.charge(&AccessProfile::new().cpu(5.0).rand(MemKind::Dram, 2.0));
        assert_eq!(ctx.profile().cpu_cycles, 15.0);
        let p = ctx.take_profile();
        assert_eq!(p.rand_accesses[MemKind::Dram.index()], 2.0);
        assert_eq!(ctx.profile().cpu_cycles, 0.0);
    }

    #[test]
    fn charge_as_tallies_bytes_by_group() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
        let mut ctx = ExecCtx::new(&env);
        ctx.charge_as(
            PrimGroup::Sort,
            &AccessProfile::new().seq(MemKind::Hbm, 100.0),
        );
        ctx.charge_as(
            PrimGroup::Sort,
            &AccessProfile::new().rand(MemKind::Dram, 2.0), // 2 cache lines
        );
        ctx.charge_as(
            PrimGroup::Merge,
            &AccessProfile::new().seq(MemKind::Dram, 7.0),
        );
        let tally = ctx.take_tally();
        assert_eq!(tally[PrimGroup::Sort.index()], 100.0 + 2.0 * 64.0);
        assert_eq!(tally[PrimGroup::Merge.index()], 7.0);
        assert_eq!(tally[PrimGroup::Extract.index()], 0.0);
        // Taking resets; profile accumulation is unaffected.
        assert_eq!(ctx.take_tally(), [0.0; PrimGroup::COUNT]);
        assert!(ctx.profile().seq_bytes[MemKind::Hbm.index()] > 0.0);
    }
}

use sbx_simmem::{MemKind, Priority};

use crate::ImpactTag;

/// Increment by which the knob moves per monitor sample (paper §5: Δ = 0.05).
pub const BALANCER_DELTA: f64 = 0.05;

/// HBM capacity usage above which the balancer sheds load to DRAM.
const HBM_PRESSURE: f64 = 0.80;
/// DRAM bandwidth fraction above which the balancer pulls load back to HBM.
/// Deliberately higher than the HBM threshold: capacity is a *hard* limit —
/// when HBM fills, every KPA is forced to spill regardless of tags (paper
/// §5) — while bandwidth saturation only slows tasks down, so under joint
/// pressure the knob sheds capacity first.
const DRAM_PRESSURE: f64 = 0.90;

/// Snapshot of the knob (see [`DemandBalancer::knob`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KnobState {
    /// Probability that a `Low`-tagged KPA allocates on HBM.
    pub k_low: f64,
    /// Probability that a `High`-tagged KPA allocates on HBM.
    pub k_high: f64,
}

/// The demand-balance knob: decides, per KPA allocation, which memory tier
/// it lands on (paper §5).
///
/// `Urgent` tasks always allocate from the reserved HBM pool. `High` and
/// `Low` tasks allocate on HBM with probabilities `k_high` and `k_low`,
/// which the balancer nudges by [`BALANCER_DELTA`] whenever the resource
/// monitor observes imbalance between HBM capacity usage and DRAM bandwidth
/// usage. `k_low` moves first; `k_high` only moves when `k_low` is pinned at
/// an extreme *and* the pipeline's output delay has at least 10% headroom
/// below its target (for downward moves, which risk delaying output).
///
/// Placement "randomness" is implemented with deterministic per-tag
/// accumulators (a fraction `k` of allocations goes to HBM, exactly), so
/// runs are reproducible.
#[derive(Debug, Clone)]
pub struct DemandBalancer {
    k_low: f64,
    k_high: f64,
    acc_low: f64,
    acc_high: f64,
}

impl Default for DemandBalancer {
    fn default() -> Self {
        Self::new()
    }
}

impl DemandBalancer {
    /// A balancer with both knobs at their initial value of 1.0 (all KPAs
    /// to HBM).
    pub fn new() -> Self {
        DemandBalancer {
            k_low: 1.0,
            k_high: 1.0,
            acc_low: 0.0,
            acc_high: 0.0,
        }
    }

    /// The current knob values.
    pub fn knob(&self) -> KnobState {
        KnobState {
            k_low: self.k_low,
            k_high: self.k_high,
        }
    }

    /// Decides the placement of a new KPA for a task tagged `tag`.
    pub fn place(&mut self, tag: ImpactTag) -> (MemKind, Priority) {
        match tag {
            ImpactTag::Urgent => (MemKind::Hbm, Priority::Reserved),
            ImpactTag::High => (
                Self::draw(&mut self.acc_high, self.k_high),
                Priority::Normal,
            ),
            ImpactTag::Low => (Self::draw(&mut self.acc_low, self.k_low), Priority::Normal),
        }
    }

    fn draw(acc: &mut f64, k: f64) -> MemKind {
        *acc += k;
        if *acc >= 1.0 - 1e-12 {
            *acc -= 1.0;
            MemKind::Hbm
        } else {
            MemKind::Dram
        }
    }

    /// Restores the knob from a checkpoint snapshot.
    ///
    /// The placement accumulators restart from zero: they are sub-record
    /// rounding state, and resetting them keeps recovered runs deterministic
    /// regardless of where the crash fell between two allocations.
    pub fn restore(&mut self, knob: KnobState) {
        self.k_low = knob.k_low.clamp(0.0, 1.0);
        self.k_high = knob.k_high.clamp(0.0, 1.0);
        self.acc_low = 0.0;
        self.acc_high = 0.0;
    }

    /// One monitor sample: adjusts the knob toward balance.
    ///
    /// * `hbm_usage` — HBM capacity usage fraction in `[0, 1]`.
    /// * `dram_bw_frac` — DRAM bandwidth usage as a fraction of its peak.
    /// * `delay_headroom` — whether output delay is at least 10% below the
    ///   target (gates `k_high` reductions).
    pub fn update(&mut self, hbm_usage: f64, dram_bw_frac: f64, delay_headroom: bool) {
        let hbm_over = hbm_usage - HBM_PRESSURE;
        let dram_over = dram_bw_frac - DRAM_PRESSURE;

        if hbm_over > 0.0 && hbm_over > dram_over {
            // HBM capacity is the scarcer resource: shed new KPAs to DRAM.
            if self.k_low > 0.0 {
                self.k_low = (self.k_low - BALANCER_DELTA).max(0.0);
            } else if delay_headroom {
                self.k_high = (self.k_high - BALANCER_DELTA).max(0.0);
            }
        } else if dram_over > 0.0 && dram_over > hbm_over {
            // DRAM bandwidth is the scarcer resource: pull KPAs back to HBM.
            if self.k_low < 1.0 {
                self.k_low = (self.k_low + BALANCER_DELTA).min(1.0);
            } else {
                self.k_high = (self.k_high + BALANCER_DELTA).min(1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_start_at_one() {
        let b = DemandBalancer::new();
        assert_eq!(
            b.knob(),
            KnobState {
                k_low: 1.0,
                k_high: 1.0
            }
        );
    }

    #[test]
    fn urgent_always_gets_reserved_hbm() {
        let mut b = DemandBalancer::new();
        for _ in 0..10 {
            b.update(1.0, 0.0, true); // crush k_low to zero
        }
        assert_eq!(
            b.place(ImpactTag::Urgent),
            (MemKind::Hbm, Priority::Reserved)
        );
    }

    #[test]
    fn placement_fraction_matches_knob() {
        let mut b = DemandBalancer::new();
        // Drive k_low to 0.75 (five downward steps of 0.05).
        for _ in 0..5 {
            b.update(1.0, 0.0, true);
        }
        assert!((b.knob().k_low - 0.75).abs() < 1e-12);
        let hbm = (0..1000)
            .filter(|_| b.place(ImpactTag::Low).0 == MemKind::Hbm)
            .count();
        assert_eq!(hbm, 750, "deterministic fraction must match knob exactly");
    }

    #[test]
    fn k_high_only_moves_after_k_low_exhausted_and_with_headroom() {
        let mut b = DemandBalancer::new();
        for _ in 0..20 {
            b.update(1.0, 0.0, true);
        }
        assert_eq!(b.knob().k_low, 0.0);
        assert_eq!(b.knob().k_high, 1.0);
        // Without delay headroom k_high must hold.
        b.update(1.0, 0.0, false);
        assert_eq!(b.knob().k_high, 1.0);
        b.update(1.0, 0.0, true);
        assert!((b.knob().k_high - 0.95).abs() < 1e-12);
    }

    #[test]
    fn dram_bandwidth_pressure_raises_knob() {
        let mut b = DemandBalancer::new();
        for _ in 0..4 {
            b.update(1.0, 0.0, true);
        }
        let before = b.knob().k_low;
        b.update(0.1, 1.0, true); // DRAM saturated, HBM empty
        assert!((b.knob().k_low - (before + BALANCER_DELTA)).abs() < 1e-12);
    }

    #[test]
    fn balanced_state_leaves_knob_alone() {
        let mut b = DemandBalancer::new();
        b.update(0.5, 0.5, true);
        b.update(0.85, 0.95, true); // equal overage on both sides: hold
        assert_eq!(
            b.knob(),
            KnobState {
                k_low: 1.0,
                k_high: 1.0
            }
        );
    }

    #[test]
    fn knob_stays_within_bounds() {
        let mut b = DemandBalancer::new();
        for _ in 0..100 {
            b.update(1.0, 0.0, true);
        }
        assert_eq!(b.knob().k_low, 0.0);
        assert_eq!(b.knob().k_high, 0.0);
        for _ in 0..100 {
            b.update(0.0, 1.0, true);
        }
        assert_eq!(b.knob().k_low, 1.0);
        assert_eq!(b.knob().k_high, 1.0);
    }
}

//! `sbx` — the StreamBox-HBM command-line driver.
//!
//! ```text
//! sbx bench <name> [--cores N] [--bundles N] [--bundle-rows N]
//!                  [--nic rdma|eth|unlimited] [--mode hybrid|caching|dram|nokpa]
//!                  [--keys N] [--rate N] [--samples-csv PATH]
//! sbx figure <2|7|8|9|10|11|ablation>
//! sbx machines
//! sbx list
//! ```

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::process::ExitCode;

use streambox_hbm::prelude::*;

const BENCHMARKS: [&str; 10] = [
    "topk",
    "sum",
    "median",
    "avg",
    "avg-all",
    "unique",
    "join",
    "filter",
    "power-grid",
    "ysb",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sbx bench <name> [--cores N] [--bundles N] [--bundle-rows N]\n\
         \x20                [--nic rdma|eth|unlimited] [--mode hybrid|caching|dram|nokpa]\n\
         \x20                [--keys N] [--rate N]\n\
         \x20 sbx figure <2|7|8|9|10|11|ablation>\n  sbx machines\n  sbx list\n\n\
         benchmarks: {}",
        BENCHMARKS.join(", ")
    );
    ExitCode::from(2)
}

#[derive(Debug, Clone)]
struct BenchArgs {
    name: String,
    cores: u32,
    bundles: usize,
    bundle_rows: usize,
    nic: NicModel,
    mode: EngineMode,
    keys: u64,
    rate: u64,
    samples_csv: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            name: String::new(),
            cores: 64,
            bundles: 50,
            bundle_rows: 20_000,
            nic: NicModel::rdma_40g(),
            mode: EngineMode::Hybrid,
            keys: 10_000,
            rate: 20_000_000,
            samples_csv: None,
        }
    }
}

fn parse_bench_args(args: &[String]) -> Result<BenchArgs, String> {
    let mut out = BenchArgs {
        name: args.first().cloned().unwrap_or_default(),
        ..Default::default()
    };
    if !BENCHMARKS.contains(&out.name.as_str()) {
        return Err(format!("unknown benchmark '{}'", out.name));
    }
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--cores" => out.cores = value.parse().map_err(|_| "bad --cores")?,
            "--bundles" => out.bundles = value.parse().map_err(|_| "bad --bundles")?,
            "--bundle-rows" => {
                out.bundle_rows = value.parse().map_err(|_| "bad --bundle-rows")?;
            }
            "--keys" => out.keys = value.parse().map_err(|_| "bad --keys")?,
            "--samples-csv" => out.samples_csv = Some(value.clone()),
            "--rate" => out.rate = value.parse().map_err(|_| "bad --rate")?,
            "--nic" => {
                out.nic = match value.as_str() {
                    "rdma" => NicModel::rdma_40g(),
                    "eth" => NicModel::ethernet_10g(),
                    "unlimited" => NicModel::unlimited(),
                    other => return Err(format!("unknown nic '{other}'")),
                }
            }
            "--mode" => {
                out.mode = match value.as_str() {
                    "hybrid" => EngineMode::Hybrid,
                    "caching" => EngineMode::CachingKpa,
                    "dram" => EngineMode::DramOnly,
                    "nokpa" => EngineMode::CachingNoKpa,
                    other => return Err(format!("unknown mode '{other}'")),
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    Ok(out)
}

fn pipeline_for(name: &str) -> Pipeline {
    match name {
        "topk" => benchmarks::topk_per_key(3),
        "sum" => benchmarks::sum_per_key(),
        "median" => benchmarks::median_per_key(),
        "avg" => benchmarks::avg_per_key(),
        "avg-all" => benchmarks::avg_all(),
        "unique" => benchmarks::unique_count_per_key(),
        "join" => benchmarks::temporal_join(),
        "filter" => benchmarks::windowed_filter(),
        "power-grid" => benchmarks::power_grid(),
        "ysb" => benchmarks::ysb(1_000),
        _ => unreachable!("validated"),
    }
}

fn run_bench(a: BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores: a.cores,
        mode: a.mode,
        sender: SenderConfig {
            bundle_rows: a.bundle_rows,
            bundles_per_watermark: 10,
            nic: a.nic,
        },
        ..RunConfig::default()
    };
    println!(
        "running '{}' on {} ({} cores, {}, {})",
        a.name, cfg.machine.name, a.cores, a.nic.name, a.mode
    );
    let engine = Engine::new(cfg);
    let pipeline = pipeline_for(&a.name);
    let report = match a.name.as_str() {
        "join" | "filter" => {
            let l = KvSource::new(1, a.keys, a.rate).with_value_range(1_000_000);
            let r = KvSource::new(2, a.keys, a.rate).with_value_range(1_000_000);
            engine.run_pair(l, r, pipeline, a.bundles / 2)?
        }
        "power-grid" => engine.run(
            PowerGridSource::new(1, 100, 20, a.rate),
            pipeline,
            a.bundles,
        )?,
        "ysb" => engine.run(
            YsbSource::new(1, 10_000, 1_000, a.rate),
            pipeline,
            a.bundles,
        )?,
        _ => engine.run(
            KvSource::new(1, a.keys, a.rate).with_value_range(1_000_000),
            pipeline,
            a.bundles,
        )?,
    };
    println!(
        "  throughput     : {:>10.2} M records/s ({} records in {:.4} s simulated)",
        report.throughput_mrps(),
        report.records_in,
        report.sim_secs
    );
    println!(
        "  windows        : {:>10} closed, {} output records",
        report.windows_closed, report.output_records
    );
    println!(
        "  bandwidth peak : {:>10.1} GB/s HBM, {:.1} GB/s DRAM",
        report.peak_hbm_bw_gbps, report.peak_dram_bw_gbps
    );
    println!(
        "  output delay   : {:>10.4} s max ({:.4} s avg)",
        report.max_output_delay_secs, report.avg_output_delay_secs
    );
    println!(
        "  HBM high water : {:>10} KiB",
        report.hbm_peak_used_bytes / 1024
    );
    if let Some(s) = report.samples.last() {
        println!("  knob (k_low, k_high): ({:.2}, {:.2})", s.k_low, s.k_high);
    }
    if let Some(path) = &a.samples_csv {
        let mut csv = String::from(
            "at_secs,hbm_usage,hbm_used_bytes,dram_bw_gbps,hbm_bw_gbps,k_low,k_high,records\n",
        );
        for s in &report.samples {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                s.at_secs,
                s.hbm_usage,
                s.hbm_used_bytes,
                s.dram_bw_gbps,
                s.hbm_bw_gbps,
                s.k_low,
                s.k_high,
                s.records
            ));
        }
        std::fs::write(path, csv)?;
        println!("  samples        : written to {path}");
    }
    Ok(())
}

fn run_figure(which: &str) -> Result<(), String> {
    match which {
        "2" => sbx_bench::fig2::run(),
        "7" => sbx_bench::fig7::run(),
        "8" => sbx_bench::fig8::run(),
        "9" => sbx_bench::fig9::run(),
        "10" => sbx_bench::fig10::run(),
        "11" => sbx_bench::fig11::run(),
        "ablation" => sbx_bench::ablation::run(),
        other => return Err(format!("unknown figure '{other}'")),
    };
    Ok(())
}

fn print_machines() {
    for m in [MachineConfig::knl(), MachineConfig::x56()] {
        println!("{}", m.name);
        println!("  cores : {} @ {} GHz", m.cores, m.core_ghz);
        if m.has_hbm {
            println!(
                "  HBM   : {} GiB, {:.0} GB/s, {:.0} ns",
                m.hbm.capacity_bytes >> 30,
                m.hbm.bandwidth_bytes_per_sec / 1e9,
                m.hbm.latency_ns
            );
        }
        println!(
            "  DRAM  : {} GiB, {:.0} GB/s, {:.0} ns",
            m.dram.capacity_bytes >> 30,
            m.dram.bandwidth_bytes_per_sec / 1e9,
            m.dram.latency_ns
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench") => match parse_bench_args(&args[1..]) {
            Ok(a) => match run_bench(a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        Some("figure") => match args.get(1) {
            Some(which) => match run_figure(which) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage()
                }
            },
            None => usage(),
        },
        Some("machines") => {
            print_machines();
            ExitCode::SUCCESS
        }
        Some("list") => {
            println!("{}", BENCHMARKS.join("\n"));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_bench_args(&s(&[
            "topk",
            "--cores",
            "16",
            "--bundles",
            "8",
            "--bundle-rows",
            "500",
            "--nic",
            "eth",
            "--mode",
            "dram",
            "--keys",
            "42",
            "--rate",
            "1000",
        ]))
        .unwrap();
        assert_eq!(a.cores, 16);
        assert_eq!(a.bundles, 8);
        assert_eq!(a.bundle_rows, 500);
        assert_eq!(a.mode, EngineMode::DramOnly);
        assert_eq!(a.keys, 42);
        assert_eq!(a.rate, 1000);
        assert_eq!(a.nic.name, NicModel::ethernet_10g().name);
    }

    #[test]
    fn parses_samples_csv_flag() {
        let a = parse_bench_args(&s(&["sum", "--samples-csv", "/tmp/x.csv"])).unwrap();
        assert_eq!(a.samples_csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_bench_args(&s(&["nope"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--cores"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--nic", "carrier-pigeon"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--mode", "quantum"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--wat", "1"])).is_err());
    }

    #[test]
    fn all_listed_benchmarks_have_pipelines() {
        for name in BENCHMARKS {
            let p = pipeline_for(name);
            assert!(!p.is_empty(), "{name}");
        }
    }
}

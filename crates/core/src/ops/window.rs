use sbx_records::{WindowId, WindowSpec};

use crate::ops::single;
use crate::{EngineError, Message, OpCtx, Operator, StatelessOperator, StreamData};

/// Assigns records to temporal windows by partitioning KPAs on the
/// timestamp column (paper §4.2: Windowing operators use `Partition` with
/// the window/slide length as the key range of each output partition).
#[derive(Debug)]
pub struct WindowInto {
    spec: WindowSpec,
    panes: bool,
}

impl WindowInto {
    /// A windowing operator for `spec`. Sliding windows duplicate each
    /// pane into every window containing it.
    pub fn new(spec: WindowSpec) -> Self {
        WindowInto { spec, panes: false }
    }

    /// Pane mode (CQL-style): partitions by the slide stride and emits each
    /// pane exactly once, tagged with its pane id. Downstream operators
    /// that combine panes (e.g.
    /// [`KeyedAggregate::with_pane_combining`](crate::ops::KeyedAggregate::with_pane_combining))
    /// reconstruct sliding windows without duplicating data.
    pub fn panes(spec: WindowSpec) -> Self {
        WindowInto { spec, panes: true }
    }
}

impl Operator for WindowInto {
    fn name(&self) -> &'static str {
        StatelessOperator::name(self)
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        self.apply(ctx, msg)
    }
}

impl StatelessOperator for WindowInto {
    fn name(&self) -> &'static str {
        "Window"
    }

    fn apply(&self, ctx: &mut OpCtx<'_>, msg: Message) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data { port, data } => {
                let mut kpa = match data {
                    StreamData::Bundle(b) => {
                        let ts_col = b.schema().ts_col();
                        ctx.extract(&b, ts_col)?
                    }
                    StreamData::Kpa(kpa) => kpa,
                    StreamData::Windowed(_, kpa) => kpa, // re-window
                };
                let ts_col = kpa.schema().ts_col();
                if kpa.resident() != ts_col {
                    ctx.charged(16, |e| kpa.key_swap(e, ts_col));
                }
                let stride = self.spec.stride();
                let (_, prio) = ctx.place();
                let panes = ctx.charged(16, |e| kpa.partition_by(e, prio, |ts| ts / stride))?;
                let overlap = if self.panes {
                    1
                } else {
                    self.spec.size() / stride
                };
                let mut out = Vec::new();
                for (pane, pkpa) in panes {
                    if overlap == 1 {
                        out.push(Message::Data {
                            port,
                            data: StreamData::Windowed(WindowId(pane), pkpa),
                        });
                    } else {
                        // Sliding window: pane p lies inside windows
                        // [p - overlap + 1, p] (cf. WindowSpec::windows_of);
                        // duplicate the KPA into each.
                        for w in pane.saturating_sub(overlap - 1)..=pane {
                            let copy = ctx.charged(16, |e| pkpa.select(e, prio, |_| true))?;
                            out.push(Message::Data {
                                port,
                                data: StreamData::Windowed(WindowId(w), copy),
                            });
                        }
                    }
                }
                Ok(out)
            }
            other => Ok(single(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DemandBalancer, EngineMode, ImpactTag};
    use sbx_records::{Col, RecordBundle, Schema};
    use sbx_simmem::{MachineConfig, MemEnv};

    fn windows_of(out: &[Message]) -> Vec<(u64, Vec<u64>)> {
        out.iter()
            .map(|m| match m {
                Message::Data {
                    data: StreamData::Windowed(w, kpa),
                    ..
                } => (w.0, kpa.keys().to_vec()),
                other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    #[test]
    fn fixed_windows_partition_by_timestamp() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let flat: Vec<u64> = [5u64, 15, 7, 25].iter().flat_map(|&t| [1, 2, t]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let mut op = WindowInto::new(WindowSpec::fixed(10));
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap();
        assert_eq!(
            windows_of(&out),
            vec![(0, vec![5, 7]), (1, vec![15]), (2, vec![25])]
        );
    }

    #[test]
    fn sliding_windows_duplicate_panes() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let flat: Vec<u64> = [12u64].iter().flat_map(|&t| [1, 2, t]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let mut op = WindowInto::new(WindowSpec::sliding(10, 5));
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap();
        // ts 12 lies in windows [5,15) and [10,20): ids 1 and 2.
        assert_eq!(windows_of(&out), vec![(1, vec![12]), (2, vec![12])]);
    }

    #[test]
    fn kpa_input_swaps_to_timestamp_column() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let flat: Vec<u64> = [(1u64, 3u64), (2, 13)]
            .iter()
            .flat_map(|&(k, t)| [k, 0, t])
            .collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let kpa = ctx.extract(&b, Col(0)).unwrap();
        let mut op = WindowInto::new(WindowSpec::fixed(10));
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Kpa(kpa)))
            .unwrap();
        assert_eq!(windows_of(&out), vec![(0, vec![3]), (1, vec![13])]);
    }
}

use sbx_obs::{Counter, MetricsRegistry};
use sbx_simmem::{MemKind, Priority};

use crate::ImpactTag;

/// Increment by which the knob moves per monitor sample (paper §5: Δ = 0.05).
pub const BALANCER_DELTA: f64 = 0.05;

/// HBM capacity usage above which the balancer sheds load to DRAM.
const HBM_PRESSURE: f64 = 0.80;
/// DRAM bandwidth fraction above which the balancer pulls load back to HBM.
/// Deliberately higher than the HBM threshold: capacity is a *hard* limit —
/// when HBM fills, every KPA is forced to spill regardless of tags (paper
/// §5) — while bandwidth saturation only slows tasks down, so under joint
/// pressure the knob sheds capacity first.
const DRAM_PRESSURE: f64 = 0.90;

/// One demand-balance knob adjustment, as reported by
/// [`DemandBalancer::update`]: which knob moved, in which direction, and
/// what resource pressure triggered it. The observability layer counts
/// moves per variant (`balancer.move.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobMove {
    /// `k_low` lowered: HBM capacity pressure sheds low-impact KPAs to DRAM.
    ShedLow,
    /// `k_high` lowered: HBM pressure persists with `k_low` exhausted and
    /// output-delay headroom available.
    ShedHigh,
    /// `k_low` raised: DRAM bandwidth pressure pulls KPAs back to HBM.
    PullLow,
    /// `k_high` raised: DRAM pressure persists with `k_low` saturated.
    PullHigh,
}

impl KnobMove {
    /// All variants, in metric order.
    pub const ALL: [KnobMove; 4] = [
        KnobMove::ShedLow,
        KnobMove::ShedHigh,
        KnobMove::PullLow,
        KnobMove::PullHigh,
    ];

    /// Dense index for per-variant counters.
    pub fn index(self) -> usize {
        match self {
            KnobMove::ShedLow => 0,
            KnobMove::ShedHigh => 1,
            KnobMove::PullLow => 2,
            KnobMove::PullHigh => 3,
        }
    }

    /// Which knob moved.
    pub fn knob(self) -> &'static str {
        match self {
            KnobMove::ShedLow | KnobMove::PullLow => "k_low",
            KnobMove::ShedHigh | KnobMove::PullHigh => "k_high",
        }
    }

    /// The resource pressure that triggered the move.
    pub fn trigger(self) -> &'static str {
        match self {
            KnobMove::ShedLow | KnobMove::ShedHigh => "hbm_pressure",
            KnobMove::PullLow | KnobMove::PullHigh => "dram_bandwidth",
        }
    }

    /// Counter name for this move (`balancer.move.<direction>.<trigger>`).
    pub fn metric_name(self) -> &'static str {
        match self {
            KnobMove::ShedLow => "balancer.move.shed_low.hbm_pressure",
            KnobMove::ShedHigh => "balancer.move.shed_high.hbm_pressure",
            KnobMove::PullLow => "balancer.move.pull_low.dram_bandwidth",
            KnobMove::PullHigh => "balancer.move.pull_high.dram_bandwidth",
        }
    }
}

/// Snapshot of the knob (see [`DemandBalancer::knob`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KnobState {
    /// Probability that a `Low`-tagged KPA allocates on HBM.
    pub k_low: f64,
    /// Probability that a `High`-tagged KPA allocates on HBM.
    pub k_high: f64,
}

/// The demand-balance knob: decides, per KPA allocation, which memory tier
/// it lands on (paper §5).
///
/// `Urgent` tasks always allocate from the reserved HBM pool. `High` and
/// `Low` tasks allocate on HBM with probabilities `k_high` and `k_low`,
/// which the balancer nudges by [`BALANCER_DELTA`] whenever the resource
/// monitor observes imbalance between HBM capacity usage and DRAM bandwidth
/// usage. `k_low` moves first; `k_high` only moves when `k_low` is pinned at
/// an extreme *and* the pipeline's output delay has at least 10% headroom
/// below its target (for downward moves, which risk delaying output).
///
/// Placement "randomness" is implemented with deterministic per-tag
/// accumulators (a fraction `k` of allocations goes to HBM, exactly), so
/// runs are reproducible.
#[derive(Debug, Clone)]
pub struct DemandBalancer {
    k_low: f64,
    k_high: f64,
    acc_low: f64,
    acc_high: f64,
    /// Placement-decision counters per tier (`balancer.placed.{hbm,dram}`);
    /// inert unless [`DemandBalancer::with_metrics`] installed live ones.
    /// Clones share the counters, so worker-thread balancer copies
    /// aggregate into the same totals.
    placed: [Counter; 2],
}

impl Default for DemandBalancer {
    fn default() -> Self {
        Self::new()
    }
}

impl DemandBalancer {
    /// A balancer with both knobs at their initial value of 1.0 (all KPAs
    /// to HBM).
    pub fn new() -> Self {
        DemandBalancer {
            k_low: 1.0,
            k_high: 1.0,
            acc_low: 0.0,
            acc_high: 0.0,
            placed: [Counter::noop(), Counter::noop()],
        }
    }

    /// Registers per-tier placement-decision counters
    /// (`balancer.placed.{hbm,dram}`) in `registry`. With a no-op registry
    /// this leaves the balancer unobserved.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.placed = [
            registry.counter("balancer.placed.hbm"),
            registry.counter("balancer.placed.dram"),
        ];
        self
    }

    /// The current knob values.
    pub fn knob(&self) -> KnobState {
        KnobState {
            k_low: self.k_low,
            k_high: self.k_high,
        }
    }

    /// Decides the placement of a new KPA for a task tagged `tag`.
    pub fn place(&mut self, tag: ImpactTag) -> (MemKind, Priority) {
        let decision = match tag {
            ImpactTag::Urgent => (MemKind::Hbm, Priority::Reserved),
            ImpactTag::High => (
                Self::draw(&mut self.acc_high, self.k_high),
                Priority::Normal,
            ),
            ImpactTag::Low => (Self::draw(&mut self.acc_low, self.k_low), Priority::Normal),
        };
        self.placed[decision.0.index()].incr();
        decision
    }

    fn draw(acc: &mut f64, k: f64) -> MemKind {
        *acc += k;
        if *acc >= 1.0 - 1e-12 {
            *acc -= 1.0;
            MemKind::Hbm
        } else {
            MemKind::Dram
        }
    }

    /// Restores the knob from a checkpoint snapshot.
    ///
    /// The placement accumulators restart from zero: they are sub-record
    /// rounding state, and resetting them keeps recovered runs deterministic
    /// regardless of where the crash fell between two allocations.
    pub fn restore(&mut self, knob: KnobState) {
        self.k_low = knob.k_low.clamp(0.0, 1.0);
        self.k_high = knob.k_high.clamp(0.0, 1.0);
        self.acc_low = 0.0;
        self.acc_high = 0.0;
    }

    /// One monitor sample: adjusts the knob toward balance.
    ///
    /// * `hbm_usage` — HBM capacity usage fraction in `[0, 1]`.
    /// * `dram_bw_frac` — DRAM bandwidth usage as a fraction of its peak.
    /// * `delay_headroom` — whether output delay is at least 10% below the
    ///   target (gates `k_high` reductions).
    ///
    /// Returns the knob move taken this sample, or `None` when the knob
    /// held (balanced, pinned at a bound, or lacking delay headroom).
    pub fn update(
        &mut self,
        hbm_usage: f64,
        dram_bw_frac: f64,
        delay_headroom: bool,
    ) -> Option<KnobMove> {
        let hbm_over = hbm_usage - HBM_PRESSURE;
        let dram_over = dram_bw_frac - DRAM_PRESSURE;

        if hbm_over > 0.0 && hbm_over > dram_over {
            // HBM capacity is the scarcer resource: shed new KPAs to DRAM.
            if self.k_low > 0.0 {
                self.k_low = (self.k_low - BALANCER_DELTA).max(0.0);
                return Some(KnobMove::ShedLow);
            }
            if delay_headroom && self.k_high > 0.0 {
                self.k_high = (self.k_high - BALANCER_DELTA).max(0.0);
                return Some(KnobMove::ShedHigh);
            }
        } else if dram_over > 0.0 && dram_over > hbm_over {
            // DRAM bandwidth is the scarcer resource: pull KPAs back to HBM.
            if self.k_low < 1.0 {
                self.k_low = (self.k_low + BALANCER_DELTA).min(1.0);
                return Some(KnobMove::PullLow);
            }
            if self.k_high < 1.0 {
                self.k_high = (self.k_high + BALANCER_DELTA).min(1.0);
                return Some(KnobMove::PullHigh);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_start_at_one() {
        let b = DemandBalancer::new();
        assert_eq!(
            b.knob(),
            KnobState {
                k_low: 1.0,
                k_high: 1.0
            }
        );
    }

    #[test]
    fn urgent_always_gets_reserved_hbm() {
        let mut b = DemandBalancer::new();
        for _ in 0..10 {
            let _ = b.update(1.0, 0.0, true); // crush k_low to zero
        }
        assert_eq!(
            b.place(ImpactTag::Urgent),
            (MemKind::Hbm, Priority::Reserved)
        );
    }

    #[test]
    fn placement_fraction_matches_knob() {
        let mut b = DemandBalancer::new();
        // Drive k_low to 0.75 (five downward steps of 0.05).
        for _ in 0..5 {
            let _ = b.update(1.0, 0.0, true);
        }
        assert!((b.knob().k_low - 0.75).abs() < 1e-12);
        let hbm = (0..1000)
            .filter(|_| b.place(ImpactTag::Low).0 == MemKind::Hbm)
            .count();
        assert_eq!(hbm, 750, "deterministic fraction must match knob exactly");
    }

    #[test]
    fn k_high_only_moves_after_k_low_exhausted_and_with_headroom() {
        let mut b = DemandBalancer::new();
        for _ in 0..20 {
            let _ = b.update(1.0, 0.0, true);
        }
        assert_eq!(b.knob().k_low, 0.0);
        assert_eq!(b.knob().k_high, 1.0);
        // Without delay headroom k_high must hold.
        let _ = b.update(1.0, 0.0, false);
        assert_eq!(b.knob().k_high, 1.0);
        let _ = b.update(1.0, 0.0, true);
        assert!((b.knob().k_high - 0.95).abs() < 1e-12);
    }

    #[test]
    fn dram_bandwidth_pressure_raises_knob() {
        let mut b = DemandBalancer::new();
        for _ in 0..4 {
            let _ = b.update(1.0, 0.0, true);
        }
        let before = b.knob().k_low;
        let _ = b.update(0.1, 1.0, true); // DRAM saturated, HBM empty
        assert!((b.knob().k_low - (before + BALANCER_DELTA)).abs() < 1e-12);
    }

    #[test]
    fn balanced_state_leaves_knob_alone() {
        let mut b = DemandBalancer::new();
        let _ = b.update(0.5, 0.5, true);
        let _ = b.update(0.85, 0.95, true); // equal overage on both sides: hold
        assert_eq!(
            b.knob(),
            KnobState {
                k_low: 1.0,
                k_high: 1.0
            }
        );
    }

    #[test]
    fn update_reports_each_move_with_trigger() {
        let mut b = DemandBalancer::new();
        assert_eq!(b.update(1.0, 0.0, true), Some(KnobMove::ShedLow));
        assert_eq!(b.update(0.5, 0.5, true), None, "balanced: knob holds");
        for _ in 0..25 {
            let _ = b.update(1.0, 0.0, true);
        }
        assert_eq!(b.knob().k_low, 0.0);
        assert_eq!(b.update(1.0, 0.0, false), None, "no headroom: no move");
        assert_eq!(b.update(1.0, 0.0, true), Some(KnobMove::ShedHigh));
        assert_eq!(b.update(0.0, 1.0, true), Some(KnobMove::PullLow));
        for _ in 0..60 {
            let _ = b.update(0.0, 1.0, true);
        }
        assert_eq!(b.update(0.0, 1.0, true), None, "pinned at 1.0: no move");
        assert_eq!(KnobMove::ShedHigh.knob(), "k_high");
        assert_eq!(KnobMove::ShedHigh.trigger(), "hbm_pressure");
        assert_eq!(KnobMove::PullLow.trigger(), "dram_bandwidth");
    }

    #[test]
    fn placement_decisions_are_counted_per_tier() {
        let reg = MetricsRegistry::active();
        let mut b = DemandBalancer::new().with_metrics(&reg);
        for _ in 0..5 {
            let _ = b.update(1.0, 0.0, true); // k_low -> 0.75
        }
        for _ in 0..100 {
            let _ = b.place(ImpactTag::Low);
        }
        let _ = b.place(ImpactTag::Urgent);
        let dump = reg.snapshot();
        assert_eq!(dump.counter("balancer.placed.hbm"), Some(76));
        assert_eq!(dump.counter("balancer.placed.dram"), Some(25));
    }

    #[test]
    fn knob_stays_within_bounds() {
        let mut b = DemandBalancer::new();
        for _ in 0..100 {
            let _ = b.update(1.0, 0.0, true);
        }
        assert_eq!(b.knob().k_low, 0.0);
        assert_eq!(b.knob().k_high, 0.0);
        for _ in 0..100 {
            let _ = b.update(0.0, 1.0, true);
        }
        assert_eq!(b.knob().k_low, 1.0);
        assert_eq!(b.knob().k_high, 1.0);
    }
}

//! Records, bundles, event time and windows for StreamBox-HBM.
//!
//! Streams are unbounded sequences of fixed-width numeric records. At
//! ingress, records are batched into [`RecordBundle`]s — immutable,
//! row-format arrays allocated in DRAM (paper §3: "in arrival order and in
//! row format"). The engine never mutates a bundle; grouping operations work
//! on Key Pointer Arrays that *point into* bundles, and a bundle is
//! reclaimed when the last KPA referencing it is destroyed (§5.1). Here that
//! reference counting is carried by `Arc<RecordBundle>`: each KPA holds one
//! strong link per source bundle, and dropping the last link returns the
//! bundle's memory to the DRAM pool.
//!
//! Event time is explicit: every record carries a timestamp column, sources
//! inject [`Watermark`]s, and [`WindowSpec`] maps timestamps to temporal
//! windows.
//!
//! # Example
//!
//! ```
//! use sbx_records::{RecordBundle, Schema, Col};
//! use sbx_simmem::{MachineConfig, MemEnv};
//!
//! let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
//! let schema = Schema::kvt(); // key, value, timestamp
//! let bundle = RecordBundle::from_rows(&env, schema, &[1, 10, 0, 2, 20, 5])?;
//! assert_eq!(bundle.rows(), 2);
//! assert_eq!(bundle.value(1, Col(1)), 20);
//! assert_eq!(bundle.ts(1).raw(), 5);
//! # Ok::<(), sbx_simmem::AllocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bundle;
mod schema;
mod time;
mod window;

pub use bundle::{live_bundles, BundleId, RecordBundle, RecordRef};
pub use schema::{Col, Schema};
pub use time::{EventTime, Watermark};
pub use window::{WindowId, WindowSpec};

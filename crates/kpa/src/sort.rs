use sbx_simmem::{AllocError, Priority};

use crate::kpa::alloc_pair_bufs;
use crate::mergepath::{self, RankBy, Run};
use crate::{profile, ExecCtx, Kpa, PrimGroup};

/// A unit of sorter work shipped to the worker pool. One pool scope
/// services both phases of a sort: chunk jobs sort disjoint slices of the
/// KPA in place and *return the borrows* so the orchestrating thread can
/// re-read them as merge inputs; span jobs then k-way merge every chunk
/// into one claimed slice of the scratch output (merge-path
/// co-partitioning, see [`crate::mergepath`]).
enum Job<'x> {
    Chunk {
        keys: &'x mut [u64],
        ptrs: &'x mut [u64],
    },
    Span {
        runs: Vec<Run<'x>>,
        lo: Vec<usize>,
        hi: Vec<usize>,
        out_keys: &'x mut [u64],
        out_ptrs: &'x mut [u64],
    },
}

enum Out<'x> {
    Chunk(&'x mut [u64], &'x mut [u64]),
    Done,
}

fn run_job<'x>(job: Job<'x>) -> Out<'x> {
    match job {
        Job::Chunk { keys, ptrs } => {
            crate::bitonic::sort_chunk(&mut keys[..], &mut ptrs[..]);
            Out::Chunk(keys, ptrs)
        }
        Job::Span {
            runs,
            lo,
            hi,
            out_keys,
            out_ptrs,
        } => {
            mergepath::merge_span(&runs, &lo, &hi, RankBy::Compound, out_keys, out_ptrs);
            Out::Done
        }
    }
}

impl Kpa {
    /// **Sort** (Table 2): sorts the KPA by resident key with a
    /// multi-threaded single-pass merge-sort (paper §4.2).
    ///
    /// The input is split into `threads` chunks, each sorted in place with
    /// the in-cache bitonic kernel (one read+write pass), then all chunks
    /// are merged KPA→scratch in *one* k-way pass: each worker
    /// binary-searches the merge path to claim an equal output span, so
    /// every thread cooperates on the single merge and no pairwise
    /// ping-pong rounds (or serial final merge) remain. Scratch is
    /// allocated on the KPA's tier (spilling to DRAM when full) and the
    /// sorted scratch is adopted as the KPA's buffers; with `threads == 1`
    /// the sort runs fully in place and allocates no scratch at all.
    ///
    /// The sort order is the *compound* `(key, ptr)` order, so the result
    /// is byte-identical for every `threads` value.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if no tier can hold the scratch buffer.
    pub fn sort(&mut self, ctx: &mut ExecCtx, threads: usize) -> Result<(), AllocError> {
        let n = self.len();
        if self.is_sorted() || n <= 1 {
            self.set_sorted(true);
            return Ok(());
        }
        let threads = threads.clamp(1, n);
        let kind = self.kind();

        if threads == 1 {
            // Single run: sort in place, no scratch allocation, no merge.
            let (keys, ptrs) = self.keys_mut_parts();
            crate::bitonic::sort_chunk(keys, ptrs);
            ctx.charge_as(PrimGroup::Sort, &profile::sort(n, kind));
            self.set_sorted(true);
            return Ok(());
        }

        // One scratch pair for the single merge pass (no ping-pong),
        // capacity-accounted like the KPA itself.
        let (mut sk, mut sp, got) = alloc_pair_bufs(ctx.env(), n, kind, Priority::Normal)?;
        sk.resize(n, 0);
        sp.resize(n, 0);

        {
            let pool = ctx.pool();
            let (keys, ptrs) = self.keys_mut_parts();
            let chunk = n.div_ceil(threads);
            pool.scope(threads, run_job, |waves| {
                // Phase 1: sort chunks in parallel, in place.
                // sbx-lint: allow(raw-alloc, per-invocation job list of borrowed slices)
                let mut jobs: Vec<Job<'_>> = Vec::with_capacity(threads);
                {
                    let (mut kr, mut pr) = (&mut keys[..], &mut ptrs[..]);
                    while !kr.is_empty() {
                        let len = chunk.min(kr.len());
                        let (kh, kt) = kr.split_at_mut(len);
                        let (ph, pt) = pr.split_at_mut(len);
                        jobs.push(Job::Chunk { keys: kh, ptrs: ph });
                        kr = kt;
                        pr = pt;
                    }
                }
                // sbx-lint: allow(raw-alloc, per-invocation run list; pair data stays in pool buffers)
                let mut runs: Vec<Run<'_>> = Vec::with_capacity(threads);
                for out in waves.run(jobs) {
                    if let Out::Chunk(k, p) = out {
                        runs.push(Run { keys: k, ptrs: p });
                    }
                }

                // Phase 2: one k-way merge pass, co-partitioned so every
                // worker claims an equal span of the output.
                let cuts = mergepath::plan_spans(&runs, RankBy::Compound, threads);
                // sbx-lint: allow(raw-alloc, per-invocation span-job list of borrowed slices)
                let mut spans: Vec<Job<'_>> = Vec::with_capacity(threads);
                {
                    let (mut okr, mut opr) = (&mut sk[..], &mut sp[..]);
                    let mut done = 0usize;
                    for p in 0..threads {
                        let next = mergepath::span_rank(n, threads, p + 1);
                        let len = next - done;
                        let (kh, kt) = okr.split_at_mut(len);
                        let (ph, pt) = opr.split_at_mut(len);
                        spans.push(Job::Span {
                            runs: runs.clone(),
                            lo: cuts[p].clone(),
                            hi: cuts[p + 1].clone(),
                            out_keys: kh,
                            out_ptrs: ph,
                        });
                        okr = kt;
                        opr = pt;
                        done = next;
                    }
                }
                waves.run(spans);
            });
        }

        if got == kind {
            // Adopt the merged scratch as the KPA's buffers (zero copy).
            self.swap_pair_bufs(&mut sk, &mut sp);
        } else {
            // Scratch spilled to another tier: copy home so the KPA stays
            // where it was placed.
            let (keys, ptrs) = self.keys_mut_parts();
            keys.copy_from_slice(&sk);
            ptrs.copy_from_slice(&sp);
        }

        ctx.charge_as(PrimGroup::Sort, &profile::sort(n, kind));
        self.set_sorted(true);
        Ok(())
    }
}

#[cfg(test)]
mod tests {

    use sbx_records::{Col, RecordBundle, Schema};
    use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};

    use super::*;

    fn env() -> MemEnv {
        MemEnv::new(MachineConfig::knl().scaled(0.01))
    }

    fn kpa_of(env: &MemEnv, ctx: &mut ExecCtx, keys: &[u64]) -> Kpa {
        let flat: Vec<u64> = keys.iter().flat_map(|&k| [k, k * 10, 0]).collect();
        let b = RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap();
        let mut kpa = Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        kpa.set_sorted(keys.len() <= 1);
        kpa
    }

    #[test]
    fn sort_orders_keys_and_keeps_pointers_attached() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_of(&env, &mut ctx, &[9, 1, 7, 3, 3, 120, 0]);
        kpa.sort(&mut ctx, 3).unwrap();
        assert!(kpa.is_sorted());
        assert_eq!(kpa.keys(), &[0, 1, 3, 3, 7, 9, 120]);
        // Each pointer still leads to the record whose key it carries.
        for i in 0..kpa.len() {
            assert_eq!(kpa.value_at(i, Col(1)), kpa.keys()[i] * 10);
        }
    }

    #[test]
    fn sort_is_idempotent_and_cheap_when_sorted() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_of(&env, &mut ctx, &[4, 2, 8]);
        kpa.sort(&mut ctx, 2).unwrap();
        let charged = ctx.take_profile();
        assert!(charged.cpu_cycles > 0.0);
        kpa.sort(&mut ctx, 2).unwrap();
        assert_eq!(
            ctx.profile().cpu_cycles,
            0.0,
            "re-sort of sorted KPA is free"
        );
    }

    #[test]
    fn sort_matches_std_sort_on_random_input() {
        use sbx_prng::SbxRng;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut rng = SbxRng::seed_from_u64(42);
        let keys: Vec<u64> = (0..10_000).map(|_| rng.random_range(0..1000)).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        for threads in [1, 2, 3, 8] {
            let mut kpa = kpa_of(&env, &mut ctx, &keys);
            kpa.sort(&mut ctx, threads).unwrap();
            assert_eq!(kpa.keys(), &expect[..], "threads={threads}");
        }
    }

    #[test]
    fn sort_output_is_bit_identical_across_thread_counts() {
        use sbx_prng::SbxRng;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut rng = SbxRng::seed_from_u64(99);
        // Duplicate-heavy keys force tie-breaks onto the pointer order.
        let keys: Vec<u64> = (0..5_000).map(|_| rng.random_range(0..50)).collect();
        // Bundle IDs differ per KPA instance, so compare rows (unique per
        // record and instance-independent) rather than packed refs.
        let rows_of = |kpa: &Kpa| -> Vec<u64> {
            (0..kpa.len())
                .map(|i| u64::from(kpa.record_ref(i).row))
                .collect()
        };
        let reference = {
            let mut kpa = kpa_of(&env, &mut ctx, &keys);
            kpa.sort(&mut ctx, 1).unwrap();
            (kpa.keys().to_vec(), rows_of(&kpa))
        };
        for threads in [2usize, 4, 8] {
            let mut kpa = kpa_of(&env, &mut ctx, &keys);
            kpa.sort(&mut ctx, threads).unwrap();
            assert_eq!(kpa.keys(), &reference.0[..], "keys, threads={threads}");
            assert_eq!(rows_of(&kpa), reference.1, "pointers, threads={threads}");
        }
    }

    #[test]
    fn serial_sort_allocates_no_scratch() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_of(&env, &mut ctx, &[5, 3, 9, 1, 2, 8, 0, 7]);
        let before = env.pool(MemKind::Hbm).used_bytes();
        kpa.sort(&mut ctx, 1).unwrap();
        assert_eq!(
            env.pool(MemKind::Hbm).used_bytes(),
            before,
            "threads == 1 sorts in place without scratch buffers"
        );
        assert_eq!(kpa.keys(), &[0, 1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn parallel_sort_uses_one_scratch_pair() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_of(&env, &mut ctx, &[5, 3, 9, 1, 2, 8, 0, 7]);
        let before = env.pool(MemKind::Hbm).used_bytes();
        kpa.sort(&mut ctx, 4).unwrap();
        // Freed buffers stay accounted in the pool's freelist cache, so the
        // single scratch pair (== the KPA's own footprint) is the expected
        // residue of a parallel sort.
        assert_eq!(
            env.pool(MemKind::Hbm).used_bytes() - before,
            kpa.footprint_bytes(),
            "exactly one cached scratch pair remains"
        );
    }

    #[test]
    fn sort_spills_scratch_but_keeps_kpa_on_its_tier() {
        // HBM just fits the KPA (and not a second scratch pair).
        let mut machine = MachineConfig::knl().scaled(0.01);
        machine.hbm.capacity_bytes = 40 * 1024;
        let env = MemEnv::new(machine);
        let mut ctx = ExecCtx::new(&env);
        let keys: Vec<u64> = (0..2000).rev().collect();
        let mut kpa = kpa_of(&env, &mut ctx, &keys);
        assert_eq!(kpa.kind(), MemKind::Hbm);
        kpa.sort(&mut ctx, 4).unwrap();
        assert_eq!(kpa.kind(), MemKind::Hbm, "KPA stays on its tier");
        let expect: Vec<u64> = (0..2000).collect();
        assert_eq!(kpa.keys(), &expect[..]);
    }

    #[test]
    fn sort_handles_tiny_inputs() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        for keys in [vec![], vec![1], vec![2, 1]] {
            let mut kpa = kpa_of(&env, &mut ctx, &keys);
            kpa.set_sorted(false);
            kpa.sort(&mut ctx, 4).unwrap();
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(kpa.keys(), &expect[..]);
        }
    }

    #[test]
    fn kway_merge_matches_pairwise_merge() {
        use sbx_prng::SbxRng;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mk_parts = |ctx: &mut ExecCtx, seed: u64| -> Vec<Kpa> {
            let mut rng = SbxRng::seed_from_u64(seed);
            (0..7)
                .map(|_| {
                    let n = rng.random_range(0..400);
                    let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..5_000)).collect();
                    let mut kpa = kpa_of(&env, ctx, &keys);
                    kpa.sort(ctx, 2).unwrap();
                    kpa
                })
                .collect()
        };
        let parts_a = mk_parts(&mut ctx, 17);
        let parts_b = mk_parts(&mut ctx, 17);

        let pairwise =
            Kpa::merge_many_pairwise(&mut ctx, parts_a, MemKind::Hbm, Priority::Normal).unwrap();
        let kway = Kpa::merge_many_kway(&mut ctx, parts_b, MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(pairwise.keys(), kway.keys());
        assert_eq!(pairwise.source_count(), kway.source_count());
        assert!(kway.is_sorted());
        for i in 0..kway.len() {
            assert_eq!(kway.value_at(i, Col(0)), kway.keys()[i]);
        }
    }

    #[test]
    fn kway_merge_single_input_is_identity() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_of(&env, &mut ctx, &[3, 1, 2]);
        kpa.sort(&mut ctx, 2).unwrap();
        let merged =
            Kpa::merge_many_kway(&mut ctx, vec![kpa], MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(merged.keys(), &[1, 2, 3]);
    }

    #[test]
    fn merge_many_produces_one_sorted_kpa() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut parts = Vec::new();
        for chunk in [&[5u64, 1, 3][..], &[2, 9][..], &[7][..], &[0, 8, 4, 6][..]] {
            let mut kpa = kpa_of(&env, &mut ctx, chunk);
            kpa.sort(&mut ctx, 2).unwrap();
            parts.push(kpa);
        }
        let merged = Kpa::merge_many(&mut ctx, parts, MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(merged.keys(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(merged.source_count(), 4);
    }

    /// Dropping an `Arc<RecordBundle>` after extraction must not break
    /// pointer dereferencing post-sort (the KPA pins its sources).
    #[test]
    fn sorted_kpa_survives_bundle_drop() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let flat: Vec<u64> = [3u64, 1, 2].iter().flat_map(|&k| [k, k + 100, 0]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let mut kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        drop(b);
        kpa.set_sorted(false);
        kpa.sort(&mut ctx, 2).unwrap();
        assert_eq!(kpa.value_at(0, Col(1)), 101);
    }

    const _: fn() = || {
        fn assert_send<T: Send>() {}
        assert_send::<Kpa>();
    };
}

use std::sync::Arc;

use crate::{
    AccessProfile, BandwidthMonitor, CostModel, MachineConfig, MemKind, MemPool, SimClock,
};

/// Fraction of HBM held back for critical-path (`Urgent`) allocations.
const HBM_RESERVE_FRACTION: f64 = 0.05;

#[derive(Debug)]
struct EnvInner {
    machine: MachineConfig,
    pools: [MemPool; 2],
    monitor: BandwidthMonitor,
    clock: SimClock,
    cost: CostModel,
}

/// The shared hybrid-memory environment: one pool per tier, a bandwidth
/// monitor, a simulated clock and the machine cost model.
///
/// `MemEnv` is cheaply cloneable (internally `Arc`) and is threaded through
/// every primitive and runtime component; it is the single place where the
/// simulation substitutes for the paper's KNL hardware.
///
/// # Example
///
/// ```
/// use sbx_simmem::{AccessProfile, MachineConfig, MemEnv, MemKind};
///
/// let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
/// let profile = AccessProfile::new().seq(MemKind::Hbm, 1e6).cpu(1e5);
/// let secs = env.charge(&profile, 16);
/// assert!(secs > 0.0);
/// assert!(env.monitor().total_bytes(MemKind::Hbm) >= 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct MemEnv {
    inner: Arc<EnvInner>,
}

impl MemEnv {
    /// Builds pools, monitor and cost model for `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        let pools = [
            MemPool::new(
                MemKind::Hbm,
                machine.spec(MemKind::Hbm),
                HBM_RESERVE_FRACTION,
            ),
            MemPool::new(MemKind::Dram, machine.spec(MemKind::Dram), 0.0),
        ];
        MemEnv {
            inner: Arc::new(EnvInner {
                cost: CostModel::new(machine.clone()),
                pools,
                monitor: BandwidthMonitor::new(),
                clock: SimClock::new(),
                machine,
            }),
        }
    }

    /// The machine configuration this environment simulates.
    pub fn machine(&self) -> &MachineConfig {
        &self.inner.machine
    }

    /// The allocator for `kind`.
    pub fn pool(&self, kind: MemKind) -> &MemPool {
        &self.inner.pools[kind.index()]
    }

    /// The memory-traffic monitor.
    pub fn monitor(&self) -> &BandwidthMonitor {
        &self.inner.monitor
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The timing model.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Accounts one primitive execution: records its traffic in the
    /// bandwidth monitor (spread over the execution interval) and advances
    /// the simulated clock by its modelled duration at `cores` cores.
    ///
    /// Returns the simulated duration in seconds.
    pub fn charge(&self, profile: &AccessProfile, cores: u32) -> f64 {
        let secs = self.inner.cost.time_secs(profile, cores);
        let dur_ns = (secs * 1e9) as u64;
        let start = self.inner.clock.now_ns();
        for kind in MemKind::ALL {
            let bytes = profile.bytes_on(kind) as u64;
            self.inner.monitor.record_spread(kind, bytes, start, dur_ns);
        }
        self.inner.clock.advance(dur_ns);
        secs
    }

    /// Like [`MemEnv::charge`] but only records traffic without advancing
    /// the clock — used when several tasks execute concurrently and the
    /// caller advances the clock once for the whole batch.
    pub fn charge_traffic(&self, profile: &AccessProfile, start_ns: u64, dur_ns: u64) {
        for kind in MemKind::ALL {
            let bytes = profile.bytes_on(kind) as u64;
            self.inner
                .monitor
                .record_spread(kind, bytes, start_ns, dur_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_match_machine_capacities() {
        let m = MachineConfig::knl().scaled(1.0 / 1024.0);
        let env = MemEnv::new(m.clone());
        assert_eq!(
            env.pool(MemKind::Hbm).capacity_bytes(),
            m.hbm.capacity_bytes
        );
        assert_eq!(
            env.pool(MemKind::Dram).capacity_bytes(),
            m.dram.capacity_bytes
        );
    }

    #[test]
    fn charge_advances_clock_and_records_traffic() {
        let env = MemEnv::new(MachineConfig::knl());
        let p = AccessProfile::new().seq(MemKind::Dram, 80e9); // 1 s at saturation
        let secs = env.charge(&p, 64);
        assert!((secs - 1.0).abs() < 1e-9);
        assert_eq!(env.clock().now_ns(), 1_000_000_000);
        assert_eq!(env.monitor().total_bytes(MemKind::Dram), 80_000_000_000);
    }

    #[test]
    fn clones_share_state() {
        let env = MemEnv::new(MachineConfig::knl());
        let env2 = env.clone();
        env.clock().advance(42);
        assert_eq!(env2.clock().now_ns(), 42);
    }
}

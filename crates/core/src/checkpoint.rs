//! Checkpoint mechanism: asynchronous-barrier snapshotting types and the
//! engine-side hooks (paper-adjacent; see DESIGN.md §9).
//!
//! A [`CheckpointBarrier`] is injected by the ingress sender and flows
//! *in-band* with bundles through the pipeline. Because the engine drives
//! the serial chain in arrival order, a barrier reaching an operator means
//! every pre-barrier record has already been processed — the alignment
//! property of Chandy–Lamport style snapshots. Each stateful operator then
//! captures its window state into an [`OpState`] and forwards the barrier;
//! the engine assembles the per-operator states plus its own counters into
//! a [`PipelineSnapshot`] and hands it to the run's [`CheckpointHooks`]
//! (implemented by `sbx-checkpoint`'s snapshot store).
//!
//! KPAs hold *pointers* into RC-pinned bundles, so snapshots cannot store
//! them directly: each KPA is first run through the Table-2 `Materialize`
//! primitive (§4.3) to produce self-contained records, which restore
//! re-extracts into fresh KPAs.

// sbx-lint: out-of-scope(raw-alloc, snapshot assembly at epoch barriers; bounded by operator-state size)
use std::sync::Arc;

use sbx_kpa::Kpa;
use sbx_records::{Col, RecordBundle, Schema};
use sbx_simmem::{AccessProfile, MemEnv};

use crate::{EngineError, KnobState, OpCtx, StreamData};

/// How a [`StateEntry`]'s rows are rebuilt on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryRepr {
    /// Re-extract a KPA from the materialized rows: `resident` is the key
    /// column the KPA was resident on, `sorted` whether its pairs were
    /// sorted (materialization preserves pair order, so sortedness holds
    /// for the re-extracted KPA as well).
    Kpa {
        /// Resident key column index of the snapshotted KPA.
        resident: usize,
        /// Whether the snapshotted KPA was sorted by resident key.
        sorted: bool,
    },
    /// Keep the rows as plain records (pane bundles, pending join rows).
    Rows,
}

/// One unit of snapshotted operator state: the materialized rows of a KPA
/// or a raw row buffer, keyed by window and input port.
#[derive(Debug, Clone, PartialEq)]
pub struct StateEntry {
    /// Window the state belongs to (operator-specific meaning).
    pub window: u64,
    /// Input port / side index for multi-input operators.
    pub port: u8,
    /// How to rebuild the entry on restore.
    pub repr: EntryRepr,
    /// Columns per row.
    pub ncols: usize,
    /// Timestamp column index.
    pub ts_col: usize,
    /// Row-major record data.
    pub rows: Vec<u64>,
}

impl StateEntry {
    /// Snapshots a KPA by materializing it (Table-2 `Materialize`, §4.3)
    /// and copying the self-contained rows out of the transient bundle.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] when the materialize scratch bundle
    /// cannot be allocated.
    pub fn from_kpa(
        ctx: &mut OpCtx<'_>,
        window: u64,
        port: u8,
        kpa: &Kpa,
    ) -> Result<StateEntry, EngineError> {
        let schema = kpa.schema();
        let rb = if kpa.is_empty() || kpa.source_count() == 0 {
            16
        } else {
            schema.record_bytes()
        };
        let bundle = ctx.charged(rb, |e| kpa.materialize(e))?;
        let ncols = schema.ncols();
        let mut rows = Vec::with_capacity(bundle.rows() * ncols);
        for r in 0..bundle.rows() {
            rows.extend_from_slice(bundle.row(r));
        }
        Ok(StateEntry {
            window,
            port,
            repr: EntryRepr::Kpa {
                resident: kpa.resident().0,
                sorted: kpa.is_sorted(),
            },
            ncols,
            ts_col: schema.ts_col().0,
            rows,
        })
    }

    /// Snapshots a raw record bundle (pane buffers) as plain rows.
    pub fn from_bundle(window: u64, port: u8, b: &RecordBundle) -> StateEntry {
        let ncols = b.schema().ncols();
        let mut rows = Vec::with_capacity(b.rows() * ncols);
        for r in 0..b.rows() {
            rows.extend_from_slice(b.row(r));
        }
        StateEntry {
            window,
            port,
            repr: EntryRepr::Rows,
            ncols,
            ts_col: b.schema().ts_col().0,
            rows,
        }
    }

    /// A raw-rows entry from already-flat row data.
    pub fn from_rows(
        window: u64,
        port: u8,
        ncols: usize,
        ts_col: usize,
        rows: Vec<u64>,
    ) -> StateEntry {
        StateEntry {
            window,
            port,
            repr: EntryRepr::Rows,
            ncols,
            ts_col,
            rows,
        }
    }

    /// Rebuilds the entry's records as a pool-accounted bundle.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on a corrupt entry and
    /// [`EngineError::Alloc`] when DRAM is exhausted.
    pub fn to_bundle(&self, ctx: &mut OpCtx<'_>) -> Result<Arc<RecordBundle>, EngineError> {
        let schema = self.schema()?;
        let env = ctx.env();
        RecordBundle::from_rows(&env, schema, &self.rows).map_err(EngineError::from)
    }

    /// Rebuilds a KPA: restores the records as a bundle, re-extracts on the
    /// saved resident column at the placement chosen by the current knob,
    /// and re-marks sortedness.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when the entry does not describe a
    /// KPA and [`EngineError::Alloc`] when both tiers are exhausted.
    pub fn to_kpa(&self, ctx: &mut OpCtx<'_>) -> Result<Kpa, EngineError> {
        let EntryRepr::Kpa { resident, sorted } = self.repr else {
            return Err(EngineError::Config(
                "snapshot entry does not describe a KPA".into(),
            ));
        };
        if resident >= self.ncols {
            return Err(EngineError::Config(
                "snapshot KPA resident column out of range".into(),
            ));
        }
        let bundle = self.to_bundle(ctx)?;
        let (kind, prio) = ctx.place();
        let rb = bundle.schema().record_bytes();
        let mut kpa = ctx
            .charged(rb, |e| {
                Kpa::extract_fused(e, &bundle, Col(resident), kind, prio)
            })
            .map_err(EngineError::from)?;
        if sorted {
            kpa.mark_sorted();
        }
        Ok(kpa)
    }

    fn schema(&self) -> Result<Arc<Schema>, EngineError> {
        if self.ncols == 0
            || self.ts_col >= self.ncols
            || !self.rows.len().is_multiple_of(self.ncols)
        {
            return Err(EngineError::Config(
                "corrupt snapshot entry: bad column layout".into(),
            ));
        }
        let names: Vec<String> = (0..self.ncols).map(|i| format!("c{i}")).collect();
        Ok(Schema::new(names, Col(self.ts_col)))
    }
}

/// Snapshot of one stateful operator, captured at barrier alignment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpState {
    /// Late-data horizon: the highest watermark the operator has observed.
    pub horizon: Option<u64>,
    /// Operator-specific scalar state (counters, split u128 accumulators).
    pub scalars: Vec<u64>,
    /// Window-keyed state entries.
    pub entries: Vec<StateEntry>,
}

/// Splits a `u128` accumulator into `(hi, lo)` words for [`OpState::scalars`].
pub fn split_u128(v: u128) -> (u64, u64) {
    ((v >> 64) as u64, v as u64)
}

/// Rejoins a `u128` split by [`split_u128`].
pub fn join_u128(hi: u64, lo: u64) -> u128 {
    ((hi as u128) << 64) | lo as u128
}

/// A checkpoint barrier flowing in-band through the pipeline, accumulating
/// each stateful operator's [`OpState`] as it passes.
#[derive(Debug, Default)]
pub struct CheckpointBarrier {
    /// Monotone checkpoint epoch (1-based; assigned by the sender).
    pub epoch: u64,
    /// States collected so far, in pipeline order of the stateful operators.
    pub states: Vec<OpState>,
}

impl CheckpointBarrier {
    /// A fresh barrier for `epoch` with no states collected yet.
    pub fn new(epoch: u64) -> Self {
        CheckpointBarrier {
            epoch,
            states: Vec::new(),
        }
    }
}

/// A consistent snapshot of one engine instance: every stateful operator's
/// state plus the engine counters and the ingress replay offset needed to
/// resume exactly where the barrier fell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineSnapshot {
    /// Checkpoint epoch this snapshot belongs to.
    pub epoch: u64,
    /// Ingress replay offset: bundles the sender had produced when the
    /// barrier was injected. Recovery rewinds the sender to this offset.
    pub bundles_sent: u64,
    /// Records ingested so far.
    pub records_in: u64,
    /// Bundles ingested so far.
    pub bundles_in: u64,
    /// Output records externalized so far.
    pub output_records: u64,
    /// Windows closed so far.
    pub windows_closed: u64,
    /// Next window the engine expects to close.
    pub next_to_close: u64,
    /// Highest window id seen in the input.
    pub max_window_seen: u64,
    /// Raw value of the last watermark driven through the pipeline.
    pub watermark: u64,
    /// Simulated time at the checkpoint, nanoseconds.
    pub clock_ns: u64,
    /// The demand-balance knob `{k_low, k_high}` (paper §5).
    pub knob: KnobState,
    /// Per-operator states in pipeline order of the stateful operators.
    pub ops: Vec<OpState>,
}

/// Where in the round lifecycle a crash-injection decision is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// A bundle was ingested (batched, not yet flushed).
    Ingest,
    /// A watermark round completed.
    RoundEnd,
    /// A barrier arrived; pre-barrier bundles are not yet flushed.
    BarrierBeforeAlignment,
    /// Pre-barrier bundles flushed; operators are about to snapshot.
    BarrierAligned,
    /// Operator states collected but the snapshot is not yet persisted.
    BarrierBeforeCommit,
    /// The snapshot persisted successfully.
    BarrierCommitted,
}

/// Context handed to [`CheckpointHooks::should_crash`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashSite {
    /// Lifecycle phase of the decision point.
    pub phase: CrashPhase,
    /// Barrier epoch (meaningful only in the `Barrier*` phases, else 0).
    pub epoch: u64,
    /// Bundles ingested so far.
    pub bundles_in: u64,
    /// Simulated time, seconds.
    pub sim_secs: f64,
}

/// Engine-side checkpoint callbacks, implemented by `sbx-checkpoint`'s
/// coordinator (snapshot store + transactional output buffer + crash plan).
pub trait CheckpointHooks {
    /// Persists a completed snapshot. The returned [`AccessProfile`] is
    /// merged into the current round so the snapshot's DRAM writes are
    /// visible to the bandwidth monitor and the balancer.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the snapshot cannot be persisted (for
    /// example, the DRAM pool cannot hold it).
    fn on_checkpoint(
        &mut self,
        env: &MemEnv,
        snap: PipelineSnapshot,
    ) -> Result<AccessProfile, EngineError>;

    /// Observes one externalized output (for transactional two-phase
    /// output: pending until the next snapshot commits).
    fn on_output(&mut self, data: &StreamData) {
        let _ = data;
    }

    /// Whether to tear the worker down at `site` (fault injection).
    fn should_crash(&mut self, site: CrashSite) -> bool {
        let _ = site;
        false
    }
}

/// Hooks that do nothing: plain runs without checkpointing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHooks;

impl CheckpointHooks for NoopHooks {
    fn on_checkpoint(
        &mut self,
        _env: &MemEnv,
        _snap: PipelineSnapshot,
    ) -> Result<AccessProfile, EngineError> {
        Ok(AccessProfile::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DemandBalancer, EngineMode, ImpactTag};
    use sbx_simmem::MachineConfig;

    fn ctx_env() -> (MemEnv, DemandBalancer) {
        (
            MemEnv::new(MachineConfig::knl().scaled(0.01)),
            DemandBalancer::new(),
        )
    }

    #[test]
    fn kpa_round_trips_through_materialized_entry() {
        let (env, mut bal) = ctx_env();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::Urgent);
        let rows: Vec<u64> = (0..50u64).flat_map(|i| [i % 5, i, i * 3]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &rows).unwrap();
        let mut kpa = ctx.extract(&b, Col(0)).unwrap();
        ctx.sort(&mut kpa).unwrap();

        let entry = StateEntry::from_kpa(&mut ctx, 7, 0, &kpa).unwrap();
        assert_eq!(entry.window, 7);
        assert_eq!(entry.rows.len(), 50 * 3);

        let restored = entry.to_kpa(&mut ctx).unwrap();
        assert_eq!(restored.len(), kpa.len());
        assert!(restored.is_sorted());
        assert_eq!(restored.keys(), kpa.keys());
        // Values dereference identically through the restored bundle.
        for i in 0..kpa.len() {
            assert_eq!(restored.value_at(i, Col(1)), kpa.value_at(i, Col(1)));
        }
    }

    #[test]
    fn rows_entry_round_trips_as_bundle() {
        let (env, mut bal) = ctx_env();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::Urgent);
        let entry = StateEntry::from_rows(3, 1, 3, 2, vec![1, 2, 3, 4, 5, 6]);
        let b = entry.to_bundle(&mut ctx).unwrap();
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row(1), &[4, 5, 6]);
    }

    #[test]
    fn corrupt_entries_are_config_errors_not_panics() {
        let (env, mut bal) = ctx_env();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::Urgent);
        let ragged = StateEntry::from_rows(0, 0, 3, 2, vec![1, 2]);
        assert!(matches!(
            ragged.to_bundle(&mut ctx),
            Err(EngineError::Config(_))
        ));
        let bad_res = StateEntry {
            repr: EntryRepr::Kpa {
                resident: 9,
                sorted: false,
            },
            ..StateEntry::from_rows(0, 0, 3, 2, vec![1, 2, 3])
        };
        assert!(matches!(
            bad_res.to_kpa(&mut ctx),
            Err(EngineError::Config(_))
        ));
        let not_kpa = StateEntry::from_rows(0, 0, 3, 2, vec![1, 2, 3]);
        assert!(matches!(
            not_kpa.to_kpa(&mut ctx),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn u128_split_round_trips() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        let (hi, lo) = split_u128(v);
        assert_eq!(join_u128(hi, lo), v);
    }
}

//! Kernel scaling: host wall-clock of the merge-path grouping kernels
//! (Sort, Merge, Join) across worker-pool widths, plus the modelled
//! pass-bytes comparison between the retired multipass structure and the
//! single-pass merge-path kernels.
//!
//! Unlike the figure sweeps, the *time* column here is real host time of
//! the functional kernels (`std::time::Instant`), not modelled KNL time:
//! it demonstrates that the partitioned kernels scale with threads on the
//! host. The modelled columns show the memory-traffic reduction that
//! feeds Figures 7-9.

// sbx-lint: out-of-scope(raw-alloc, bench table; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench table; a failed run should abort loudly)
use std::sync::Arc;
use std::time::Instant; // sbx-lint: allow(wall-clock, host microbench is the point of this table)

use sbx_kpa::{join_sorted, profile, ExecCtx, Kpa, WorkerPool};
use sbx_prng::SbxRng;
use sbx_records::{Col, RecordBundle, Schema};
use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};

use crate::table::{f1, Table};

/// Pairs per KPA in the sweep.
pub const PAIRS: usize = 1_000_000;
/// Worker-pool widths swept.
pub const WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];
/// Inputs to the wide-merge comparison (one KPA per ingested bundle of a
/// watermark round, as in window closure).
pub const MERGE_WAYS: usize = 16;

fn env() -> MemEnv {
    MemEnv::new(MachineConfig::knl().scaled(0.05))
}

fn bundle(env: &MemEnv, n: usize, seed: u64) -> Arc<RecordBundle> {
    let mut rng = SbxRng::seed_from_u64(seed);
    let flat: Vec<u64> = (0..n)
        .flat_map(|_| [rng.random_range(0..(n as u64 / 4).max(1)), rng.random(), 0])
        .collect();
    RecordBundle::from_rows(env, Schema::kvt(), &flat).expect("bundle fits in DRAM")
}

fn extracted(ctx: &mut ExecCtx, b: &Arc<RecordBundle>) -> Kpa {
    Kpa::extract(ctx, b, Col(0), MemKind::Hbm, Priority::Normal).expect("KPA fits in HBM")
}

/// Times `sort`, two-way `merge` and `join` at pool width `width` over
/// [`PAIRS`]-pair inputs; returns host milliseconds per kernel.
pub fn measure_width(width: usize) -> (f64, f64, f64) {
    let env = env();
    let mut ctx = ExecCtx::with_pool(&env, WorkerPool::new(width));
    let b = bundle(&env, PAIRS, 11);

    let mut kpa = extracted(&mut ctx, &b);
    let t = Instant::now(); // sbx-lint: allow(wall-clock, host kernel timing)
    kpa.sort(&mut ctx, width).expect("sort");
    let sort_ms = t.elapsed().as_secs_f64() * 1e3;

    // Two sorted halves of the same pair count feed merge and join.
    let bh = bundle(&env, PAIRS / 2, 12);
    let bh2 = bundle(&env, PAIRS / 2, 13);
    let mut left = extracted(&mut ctx, &bh);
    let mut right = extracted(&mut ctx, &bh2);
    left.sort(&mut ctx, width).expect("sort");
    right.sort(&mut ctx, width).expect("sort");

    let t = Instant::now(); // sbx-lint: allow(wall-clock, host kernel timing)
    let merged =
        Kpa::merge(&mut ctx, &left, &right, MemKind::Hbm, Priority::Normal).expect("merge fits");
    let merge_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(merged.len(), PAIRS, "merge covers both inputs");

    let t = Instant::now(); // sbx-lint: allow(wall-clock, host kernel timing)
    let mut emitted = 0usize;
    let stats = join_sorted(&mut ctx, &left, &right, 32, |_, _, _, _| emitted += 1);
    let join_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(stats.emitted, emitted, "join stats agree with emissions");

    (sort_ms, merge_ms, join_ms)
}

/// Modelled streaming bytes of the old multipass kernels vs the
/// single-pass merge-path kernels, in MB, for [`PAIRS`] pairs on one tier:
/// `(sort_old, sort_new, merge_old, merge_new)`. The merge columns cover a
/// [`MERGE_WAYS`]-way window-closure merge (pairwise rounds re-stream the
/// data `ceil(log2 k)` times; merge-path streams it once).
pub fn modelled_pass_bytes() -> (f64, f64, f64, f64) {
    let mb = |b: f64| b / 1e6;
    let sort_old = profile::sort_multipass(PAIRS, MemKind::Hbm).seq_bytes[MemKind::Hbm.index()];
    let sort_new = profile::sort(PAIRS, MemKind::Hbm).seq_bytes[MemKind::Hbm.index()];
    let rounds = (MERGE_WAYS as f64).log2().ceil();
    let per_pass =
        profile::merge(PAIRS, MemKind::Hbm, MemKind::Hbm).seq_bytes[MemKind::Hbm.index()];
    let merge_old = per_pass * rounds;
    let merge_new = profile::merge_kway(PAIRS, MERGE_WAYS, MemKind::Hbm, MemKind::Hbm).seq_bytes
        [MemKind::Hbm.index()];
    (mb(sort_old), mb(sort_new), mb(merge_old), mb(merge_new))
}

/// Runs the sweep and renders both tables.
pub fn run() -> String {
    let mut t = Table::new(
        "Kernel scaling: host wall-clock per kernel vs worker-pool width (1 M pairs)",
        &["threads", "sort ms", "merge ms", "join ms"],
    );
    for &w in &WIDTHS {
        let (sort_ms, merge_ms, join_ms) = measure_width(w);
        t.row(vec![w.to_string(), f1(sort_ms), f1(merge_ms), f1(join_ms)]);
    }
    let mut out = t.print();

    let (so, sn, mo, mn) = modelled_pass_bytes();
    let mut m = Table::new(
        "Modelled streaming traffic: multipass vs single-pass merge-path (1 M pairs, MB)",
        &["kernel", "multipass", "merge-path", "reduction"],
    );
    m.row(vec![
        "sort".into(),
        f1(so),
        f1(sn),
        format!("{}x", f1(so / sn)),
    ]);
    m.row(vec![
        format!("merge ({MERGE_WAYS}-way)"),
        f1(mo),
        f1(mn),
        format!("{}x", f1(mo / mn)),
    ]);
    out.push_str(&m.print());

    let pool = WorkerPool::new(4);
    let mut ctx = ExecCtx::with_pool(&env(), pool.clone());
    let b = bundle(ctx.env(), 100_000, 14);
    let mut kpa = extracted(&mut ctx, &b);
    kpa.sort(&mut ctx, 4).expect("sort");
    let stats = pool.stats();
    let line = format!(
        "pool reuse at width 4: {} scope(s), {} thread spawns, {} waves, {} jobs \
         (one spawn set serves both sort phases)\n",
        stats.scopes, stats.threads_spawned, stats.waves, stats.jobs
    );
    // sbx-lint: allow(no-adhoc-io, bench harness prints its summary line)
    println!("{line}");
    out.push_str(&line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every width produces working kernels; host times are positive.
    /// (Monotone speedup is asserted by eye in EXPERIMENTS.md — wall-clock
    /// on a shared CI box is too noisy for a hard ordering assert.)
    #[test]
    fn kernels_run_at_every_width() {
        for &w in &[1usize, 4] {
            let (s, m, j) = measure_width(w);
            assert!(s > 0.0 && m > 0.0 && j > 0.0, "width {w}: {s} {m} {j}");
        }
    }

    /// The modelled traffic table must show the single-pass win: sort
    /// drops from levels+1 passes to 2, wide merge from log2(k) to 1.
    #[test]
    fn modelled_bytes_show_single_pass_win() {
        let (so, sn, mo, mn) = modelled_pass_bytes();
        let levels = profile::sort_merge_levels(PAIRS);
        assert!((so / sn - (levels + 1.0) / 2.0).abs() < 1e-9, "{so} / {sn}");
        assert!((mo / mn - 4.0).abs() < 1e-9, "16-way: 4 rounds vs 1 pass");
    }

    /// One pool scope serves both phases of a parallel sort: exactly
    /// `width - 1` threads are spawned, and both waves run through them.
    #[test]
    fn sort_reuses_one_spawn_set() {
        let pool = WorkerPool::new(4);
        let mut ctx = ExecCtx::with_pool(&env(), pool.clone());
        let b = bundle(ctx.env(), 10_000, 15);
        let mut kpa = extracted(&mut ctx, &b);
        kpa.sort(&mut ctx, 4).expect("sort");
        let stats = pool.stats();
        assert_eq!(stats.scopes, 1, "one scope per sort");
        assert_eq!(stats.threads_spawned, 3, "width - 1 spawns");
        assert_eq!(stats.waves, 2, "chunk wave + span wave");
        assert_eq!(stats.jobs, 8, "4 chunk jobs + 4 span jobs");
    }
}

//! The pure shadow-state table: one entry per tracked allocation, a
//! checker per bug class, and span-attributed reports.
//!
//! [`ShadowTable`] is a plain value — `Clone` forks the whole shadow
//! state. The process-wide [`crate::Sanitizer`] wraps one in a mutex; the
//! schedule explorer embeds one *by value* in its protocol model so every
//! explored interleaving carries its own independent shadow state.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Owner name used when no operator scope is active.
pub const UNATTRIBUTED: &str = "unattributed";

/// The span/operator attribution attached to shadow operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    /// Trace span id (shared with sbx-obs span ids when tracing is on).
    pub span: u64,
    /// Operator (or fixture) name.
    pub owner: &'static str,
}

impl Default for Scope {
    fn default() -> Self {
        Scope {
            span: 0,
            owner: UNATTRIBUTED,
        }
    }
}

/// The provenance bug classes the sanitizer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BugClass {
    /// A pointer resolved against an allocation that was already freed.
    UseAfterFree,
    /// A pointer resolved against an allocation whose records were
    /// relocated (generation bumped) after the pointer was captured —
    /// use-after-spill.
    StaleTier,
    /// An allocation freed twice.
    DoubleFree,
    /// A pointer resolved against a pool that never issued the
    /// allocation, while another pool did — cross-pool confusion.
    CrossPool,
    /// A pointer no pool ever issued, or a row index past the end of the
    /// allocation it names.
    WildPointer,
    /// An allocation still live when its engine dropped.
    Leak,
}

impl BugClass {
    fn index(self) -> u8 {
        match self {
            BugClass::UseAfterFree => 0,
            BugClass::StaleTier => 1,
            BugClass::DoubleFree => 2,
            BugClass::CrossPool => 3,
            BugClass::WildPointer => 4,
            BugClass::Leak => 5,
        }
    }
}

impl fmt::Display for BugClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugClass::UseAfterFree => "use-after-free",
            BugClass::StaleTier => "stale-tier",
            BugClass::DoubleFree => "double-free",
            BugClass::CrossPool => "cross-pool",
            BugClass::WildPointer => "wild-pointer",
            BugClass::Leak => "leak",
        };
        f.write_str(s)
    }
}

/// Shadow state of one tracked allocation (a record bundle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowAlloc {
    /// Relocation generation; bumped by [`ShadowTable::relocate`].
    pub generation: u32,
    /// Memory tier currently holding the records (`MemKind::index()`).
    pub tier: u8,
    /// Operator that performed the allocation.
    pub owner: &'static str,
    /// Span id active at allocation time.
    pub alloc_span: u64,
    /// Number of addressable rows.
    pub rows: u32,
    /// Whether the allocation is still live.
    pub live: bool,
    /// Whether the free was injected by a fixture (modelled premature
    /// reclamation). The real drop-path free of an injected-freed entry
    /// is absorbed silently so a use-after-free fixture trips exactly one
    /// check.
    pub injected: bool,
}

/// One sanitizer finding, attributed to the allocating and faulting
/// spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The bug class tripped.
    pub class: BugClass,
    /// The allocation id involved (bundle id).
    pub alloc: u64,
    /// Row index of the faulting pointer (0 when not row-specific).
    pub row: u32,
    /// Operator that allocated (or [`UNATTRIBUTED`] for wild pointers).
    pub owner: &'static str,
    /// Span id active at allocation time.
    pub alloc_span: u64,
    /// Operator active at the fault.
    pub fault_owner: &'static str,
    /// Span id active at the fault.
    pub fault_span: u64,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] alloc {:#x} row {}: {} (alloc: {} span {}; fault: {} span {})",
            self.class,
            self.alloc,
            self.row,
            self.detail,
            self.owner,
            self.alloc_span,
            self.fault_owner,
            self.fault_span
        )
    }
}

/// The shadow-state table beside one memory pool.
///
/// Every data-plane allocation registers an entry; every pointer
/// resolution validates against it. Checks record a [`Report`] and
/// return validity, so callers can substitute a benign value and keep
/// the run fault-free (oracle style). Identical faults (same class,
/// allocation and row) are reported once, like a production sanitizer.
#[derive(Debug, Clone, Default)]
pub struct ShadowTable {
    entries: BTreeMap<u64, ShadowAlloc>,
    reports: Vec<Report>,
    seen: BTreeSet<(u8, u64, u32)>,
}

impl ShadowTable {
    /// An empty table.
    pub fn new() -> Self {
        ShadowTable::default()
    }

    /// Registers a fresh allocation of `rows` rows on `tier`, attributed
    /// to `scope`. Returns its initial generation.
    pub fn register(&mut self, alloc: u64, rows: u32, tier: u8, scope: Scope) -> u32 {
        let e = ShadowAlloc {
            generation: 1,
            tier,
            owner: scope.owner,
            alloc_span: scope.span,
            rows,
            live: true,
            injected: false,
        };
        self.entries.insert(alloc, e);
        e.generation
    }

    /// Drop-path free: the real owner released the allocation.
    ///
    /// A live entry is removed; an entry already freed by
    /// [`ShadowTable::inject_free`] is absorbed silently (the fixture
    /// modelled this free happening early); an entry freed twice through
    /// this path is a [`BugClass::DoubleFree`].
    pub fn free(&mut self, alloc: u64, scope: Scope) {
        match self.entries.get(&alloc) {
            Some(e) if e.live || e.injected => {
                self.entries.remove(&alloc);
            }
            Some(e) => {
                let (owner, span) = (e.owner, e.alloc_span);
                self.report(
                    BugClass::DoubleFree,
                    alloc,
                    0,
                    owner,
                    span,
                    scope,
                    "allocation freed twice".to_string(),
                );
            }
            // Allocated before the sanitizer attached; nothing to check.
            None => {}
        }
    }

    /// Models a premature reclamation: marks the allocation freed while
    /// the real object stays alive. A second injection is a
    /// [`BugClass::DoubleFree`].
    pub fn inject_free(&mut self, alloc: u64, scope: Scope) {
        match self.entries.get_mut(&alloc) {
            Some(e) if e.live => {
                e.live = false;
                e.injected = true;
            }
            Some(e) => {
                let (owner, span) = (e.owner, e.alloc_span);
                self.report(
                    BugClass::DoubleFree,
                    alloc,
                    0,
                    owner,
                    span,
                    scope,
                    "allocation freed twice".to_string(),
                );
            }
            None => {
                self.report(
                    BugClass::WildPointer,
                    alloc,
                    0,
                    UNATTRIBUTED,
                    0,
                    scope,
                    "free of an allocation this pool never issued".to_string(),
                );
            }
        }
    }

    /// Models a tier move (spill / promotion): bumps the generation and
    /// records the new tier, invalidating every pointer captured against
    /// the old generation. Returns the new generation, or `None` if the
    /// allocation is unknown or dead (reported as
    /// [`BugClass::UseAfterFree`]).
    pub fn relocate(&mut self, alloc: u64, new_tier: u8, scope: Scope) -> Option<u32> {
        match self.entries.get_mut(&alloc) {
            Some(e) if e.live => {
                e.generation += 1;
                e.tier = new_tier;
                Some(e.generation)
            }
            Some(e) => {
                let (owner, span) = (e.owner, e.alloc_span);
                self.report(
                    BugClass::UseAfterFree,
                    alloc,
                    0,
                    owner,
                    span,
                    scope,
                    "relocation of a freed allocation".to_string(),
                );
                None
            }
            None => None,
        }
    }

    /// Validates one pointer resolution: the allocation must be known,
    /// live, hold more than `row` rows and (when the resolving KPA
    /// captured one) still be at `expected_gen`. Records a report and
    /// returns `false` on any violation.
    pub fn resolve(
        &mut self,
        alloc: u64,
        row: u32,
        expected_gen: Option<u32>,
        scope: Scope,
    ) -> bool {
        let Some(e) = self.entries.get(&alloc).copied() else {
            self.report(
                BugClass::WildPointer,
                alloc,
                row,
                UNATTRIBUTED,
                0,
                scope,
                "pointer to an allocation this pool never issued".to_string(),
            );
            return false;
        };
        if !e.live {
            self.report(
                BugClass::UseAfterFree,
                alloc,
                row,
                e.owner,
                e.alloc_span,
                scope,
                "pointer resolved after the allocation was freed".to_string(),
            );
            return false;
        }
        if row >= e.rows {
            self.report(
                BugClass::WildPointer,
                alloc,
                row,
                e.owner,
                e.alloc_span,
                scope,
                format!("row {} out of range (allocation holds {})", row, e.rows),
            );
            return false;
        }
        if let Some(g) = expected_gen {
            if g != e.generation {
                self.report(
                    BugClass::StaleTier,
                    alloc,
                    row,
                    e.owner,
                    e.alloc_span,
                    scope,
                    format!(
                        "pointer captured at generation {g} but records moved to \
                         tier {} at generation {}",
                        e.tier, e.generation
                    ),
                );
                return false;
            }
        }
        true
    }

    /// Records a [`BugClass::CrossPool`] finding: `alloc` is live in the
    /// shadow table of another pool but was resolved against this one.
    pub fn report_foreign(&mut self, alloc: u64, row: u32, other_pool: u64, scope: Scope) {
        self.report(
            BugClass::CrossPool,
            alloc,
            row,
            UNATTRIBUTED,
            0,
            scope,
            format!("pointer belongs to pool {other_pool}, resolved against the wrong pool"),
        );
    }

    /// Engine-drop leak sweep: reports every live allocation not in
    /// `exclude` (legitimate run outputs) as a [`BugClass::Leak`].
    /// Returns the number of leaks found.
    pub fn sweep_leaks(&mut self, exclude: &[u64], scope: Scope) -> usize {
        let mut leaked = Vec::new();
        for (&alloc, e) in &self.entries {
            if e.live && !exclude.contains(&alloc) {
                leaked.push((alloc, e.owner, e.alloc_span, e.rows));
            }
        }
        let n = leaked.len();
        for (alloc, owner, span, rows) in leaked {
            self.report(
                BugClass::Leak,
                alloc,
                0,
                owner,
                span,
                scope,
                format!("allocation of {rows} rows still live at engine drop"),
            );
        }
        n
    }

    /// The current generation of `alloc`, if tracked.
    pub fn generation(&self, alloc: u64) -> Option<u32> {
        self.entries.get(&alloc).map(|e| e.generation)
    }

    /// Whether this table has an entry (live or tombstoned) for `alloc`.
    pub fn contains(&self, alloc: u64) -> bool {
        self.entries.contains_key(&alloc)
    }

    /// Number of live allocations tracked.
    pub fn live_count(&self) -> usize {
        self.entries.values().filter(|e| e.live).count()
    }

    /// The findings recorded so far, in detection order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Discards recorded findings (entries stay).
    pub fn clear_reports(&mut self) {
        self.reports.clear();
        self.seen.clear();
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        class: BugClass,
        alloc: u64,
        row: u32,
        owner: &'static str,
        alloc_span: u64,
        scope: Scope,
        detail: String,
    ) {
        if !self.seen.insert((class.index(), alloc, row)) {
            return;
        }
        self.reports.push(Report {
            class,
            alloc,
            row,
            owner,
            alloc_span,
            fault_owner: scope.owner,
            fault_span: scope.span,
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(span: u64, owner: &'static str) -> Scope {
        Scope { span, owner }
    }

    #[test]
    fn healthy_lifecycle_is_clean() {
        let mut t = ShadowTable::new();
        t.register(1, 10, 1, at(1, "src"));
        assert!(t.resolve(1, 9, Some(1), at(2, "agg")));
        t.free(1, at(3, "drop"));
        assert!(t.reports().is_empty());
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn use_after_free_is_reported_once_with_both_spans() {
        let mut t = ShadowTable::new();
        t.register(1, 10, 1, at(7, "src"));
        t.inject_free(1, at(8, "bug"));
        assert!(!t.resolve(1, 3, None, at(9, "agg")));
        assert!(!t.resolve(1, 3, None, at(9, "agg"))); // deduped
        assert_eq!(t.reports().len(), 1);
        let r = &t.reports()[0];
        assert_eq!(r.class, BugClass::UseAfterFree);
        assert_eq!((r.alloc_span, r.fault_span), (7, 9));
        assert_eq!((r.owner, r.fault_owner), ("src", "agg"));
        // The real drop-path free absorbs the injected free silently.
        t.free(1, at(10, "drop"));
        assert_eq!(t.reports().len(), 1);
    }

    #[test]
    fn double_free_is_reported() {
        let mut t = ShadowTable::new();
        t.register(1, 4, 0, at(1, "src"));
        t.inject_free(1, at(2, "bug"));
        t.inject_free(1, at(3, "bug"));
        assert_eq!(t.reports().len(), 1);
        assert_eq!(t.reports()[0].class, BugClass::DoubleFree);
    }

    #[test]
    fn stale_generation_after_relocate_is_reported() {
        let mut t = ShadowTable::new();
        let g = t.register(1, 4, 0, at(1, "src"));
        assert_eq!(t.relocate(1, 1, at(2, "spill")), Some(g + 1));
        assert!(t.resolve(1, 0, Some(g + 1), at(3, "agg"))); // rebound: fine
        assert!(!t.resolve(1, 0, Some(g), at(3, "agg"))); // stale capture
        assert_eq!(t.reports().len(), 1);
        assert_eq!(t.reports()[0].class, BugClass::StaleTier);
    }

    #[test]
    fn wild_pointer_unknown_alloc_and_row_overflow() {
        let mut t = ShadowTable::new();
        t.register(1, 4, 0, at(1, "src"));
        assert!(!t.resolve(99, 0, None, at(2, "agg")));
        assert!(!t.resolve(1, 4, None, at(2, "agg")));
        let classes: Vec<BugClass> = t.reports().iter().map(|r| r.class).collect();
        assert_eq!(classes, vec![BugClass::WildPointer, BugClass::WildPointer]);
    }

    #[test]
    fn leak_sweep_respects_exclusions() {
        let mut t = ShadowTable::new();
        t.register(1, 4, 0, at(1, "src"));
        t.register(2, 4, 0, at(1, "src"));
        assert_eq!(t.sweep_leaks(&[2], at(9, "engine-drop")), 1);
        assert_eq!(t.reports().len(), 1);
        let r = &t.reports()[0];
        assert_eq!(r.class, BugClass::Leak);
        assert_eq!(r.alloc, 1);
        assert_eq!(r.fault_span, 9);
    }

    #[test]
    fn clone_forks_state() {
        let mut a = ShadowTable::new();
        a.register(1, 4, 0, at(1, "src"));
        let mut b = a.clone();
        b.inject_free(1, at(2, "bug"));
        assert!(a.resolve(1, 0, None, at(3, "agg"))); // a unaffected
        assert!(!b.resolve(1, 0, None, at(3, "agg")));
    }
}

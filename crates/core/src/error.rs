use std::error::Error;
use std::fmt;

use sbx_simmem::AllocError;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A memory tier could not satisfy an allocation even after spilling.
    Alloc(AllocError),
    /// The pipeline or run configuration is invalid.
    Config(String),
    /// An engine invariant was broken (a bug, not a runtime condition);
    /// reported instead of panicking so a pipeline failure cannot take the
    /// process down.
    Internal(&'static str),
    /// The fault-injection harness tore the worker down mid-run. All
    /// RC-pinned bundles and KPAs are released on unwind; recovery restores
    /// the latest complete snapshot and resumes from its replay offset.
    Crashed(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Alloc(e) => write!(f, "allocation failed: {e}"),
            EngineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            EngineError::Internal(msg) => write!(f, "engine invariant broken: {msg}"),
            EngineError::Crashed(site) => write!(f, "worker crashed (injected): {site}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Alloc(e) => Some(e),
            EngineError::Config(_) | EngineError::Internal(_) | EngineError::Crashed(_) => None,
        }
    }
}

impl From<AllocError> for EngineError {
    fn from(e: AllocError) -> Self {
        EngineError::Alloc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_simmem::MemKind;

    #[test]
    fn alloc_errors_convert_and_chain() {
        let a = AllocError {
            kind: MemKind::Hbm,
            requested_bytes: 1,
            available_bytes: 0,
        };
        let e: EngineError = a.clone().into();
        assert_eq!(e, EngineError::Alloc(a));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("allocation failed"));
    }

    #[test]
    fn internal_error_displays_message() {
        let e = EngineError::Internal("task missing");
        assert!(e.to_string().contains("invariant"));
        assert!(e.to_string().contains("task missing"));
        assert!(e.source().is_none());
    }

    #[test]
    fn config_error_displays_message() {
        let e = EngineError::Config("no operators".into());
        assert!(e.to_string().contains("no operators"));
        assert!(e.source().is_none());
    }
}

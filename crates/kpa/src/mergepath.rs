//! Merge-path (diagonal) co-partitioning for single-pass parallel merges.
//!
//! The classic GPU/SIMD merge decomposition: given `k` sorted runs and `p`
//! workers, cut the *output* into `p` equal spans and binary-search, for
//! each span boundary, the unique per-run split positions whose prefix
//! counts sum to the boundary's global rank. Every worker then performs an
//! independent k-way merge of its claimed input slices into its claimed
//! output slice — all threads cooperate on one merge, data moves exactly
//! once, and there is no serial final-merge round.
//!
//! Two rank orders are supported:
//!
//! * [`RankBy::Compound`] — the full `(key, ptr)` pair as a 128-bit value.
//!   `Kpa::sort` canonicalizes on this total order, which makes the sorted
//!   output *bit-identical for any thread/chunk count*: the output is the
//!   multiset of pairs in compound order, independent of how the input was
//!   chunked.
//! * [`RankBy::Key`] — the resident key only, ties resolved by run index
//!   (run 0's equal keys precede run 1's). This reproduces the sequential
//!   "left input wins ties" merge exactly, so it applies to KPAs that are
//!   key-sorted but not compound-sorted (e.g. marked via `mark_sorted`).
//!
//! Rank-splitting searches the 128-bit *value space* for the smallest
//! cutoff whose global `count_le` reaches the target rank, then distributes
//! entries equal to the cutoff across runs in run order. This handles
//! arbitrarily duplicate-heavy inputs: the spans always tile the output
//! exactly (see `tests/prop_mergepath.rs`).

/// Which order merges and rank splits operate in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankBy {
    /// Total order on `(key, ptr)` as one 128-bit compound value.
    Compound,
    /// Order on the key only; equal keys ordered by run index, preserving
    /// each run's internal order (stable, left-run-wins ties).
    Key,
}

/// One sorted input run: parallel key/pointer slices of equal length.
#[derive(Debug, Clone, Copy)]
pub struct Run<'a> {
    /// Resident keys, nondecreasing in the [`RankBy`] order used.
    pub keys: &'a [u64],
    /// Packed record pointers parallel to `keys`.
    pub ptrs: &'a [u64],
}

impl Run<'_> {
    /// Number of pairs in the run.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn value(&self, i: usize, by: RankBy) -> u128 {
        match by {
            RankBy::Compound => (u128::from(self.keys[i]) << 64) | u128::from(self.ptrs[i]),
            RankBy::Key => u128::from(self.keys[i]),
        }
    }

    /// Number of entries with value `<= c` (runs are sorted, so this is a
    /// binary search).
    fn count_le(&self, by: RankBy, c: u128) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.value(mid, by) <= c {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Number of entries with value `< c`.
    fn count_lt(&self, by: RankBy, c: u128) -> usize {
        if c == 0 {
            return 0;
        }
        self.count_le(by, c - 1)
    }
}

/// Per-run split positions for global output rank `d`: the returned
/// `splits[r]` prefix lengths sum to exactly `d`, and every entry in a
/// prefix is `<=` (in `by` order, ties in run order) every entry outside
/// one — the merge-path diagonal intersection.
///
/// # Panics
///
/// Panics (debug) if `d` exceeds the total input length.
pub fn rank_split(runs: &[Run<'_>], by: RankBy, d: usize) -> Vec<usize> {
    let total: usize = runs.iter().map(Run::len).sum();
    debug_assert!(d <= total, "rank beyond input length");
    if d == 0 {
        // sbx-lint: allow(raw-alloc, k split positions; pair data stays in the caller's buffers)
        return vec![0; runs.len()];
    }
    if d >= total {
        // sbx-lint: allow(raw-alloc, k split positions; pair data stays in the caller's buffers)
        return runs.iter().map(Run::len).collect();
    }

    // Smallest cutoff value whose global <=-count reaches d. 128-bit value
    // space: ~128 probe rounds of k binary searches each.
    let (mut lo, mut hi) = (0u128, u128::MAX);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let le: usize = runs.iter().map(|r| r.count_le(by, mid)).sum();
        if le >= d {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cutoff = lo;

    // Everything strictly below the cutoff is inside the prefix; entries
    // equal to the cutoff fill the remainder in run order (matching the
    // merge comparator's run-index tie-break).
    // sbx-lint: allow(raw-alloc, k split positions; pair data stays in the caller's buffers)
    let mut splits: Vec<usize> = runs.iter().map(|r| r.count_lt(by, cutoff)).collect();
    let mut extra = d - splits.iter().sum::<usize>();
    for (s, r) in splits.iter_mut().zip(runs) {
        if extra == 0 {
            break;
        }
        let ties = r.count_le(by, cutoff) - *s;
        let take = ties.min(extra);
        *s += take;
        extra -= take;
    }
    debug_assert_eq!(extra, 0, "cutoff had fewer ties than required");
    splits
}

/// Split boundaries for `parts` equal output spans over `runs`: `parts + 1`
/// rows of per-run positions, row `p` at global rank `p * total / parts`.
/// Span `p` merges `runs[r][cuts[p][r]..cuts[p + 1][r]]` for every `r` and
/// writes output `[rank(p)..rank(p + 1))`; see [`span_ranks`].
pub fn plan_spans(runs: &[Run<'_>], by: RankBy, parts: usize) -> Vec<Vec<usize>> {
    let parts = parts.max(1);
    let total: usize = runs.iter().map(Run::len).sum();
    (0..=parts)
        .map(|p| rank_split(runs, by, span_rank(total, parts, p)))
        // sbx-lint: allow(raw-alloc, parts+1 boundary rows; pair data stays in the caller's buffers)
        .collect()
}

/// Global output rank of span boundary `p` of `parts` over `total` pairs.
pub fn span_rank(total: usize, parts: usize, p: usize) -> usize {
    total * p / parts.max(1)
}

/// K-way merges `runs[r][lo[r]..hi[r]]` for all `r` into `out_keys` /
/// `out_ptrs` in `by` order (run index breaks ties), preserving each run's
/// internal order. The output slices must have length
/// `sum(hi[r] - lo[r])`.
///
/// # Panics
///
/// Panics if the output slices are shorter than the claimed input span.
pub fn merge_span(
    runs: &[Run<'_>],
    lo: &[usize],
    hi: &[usize],
    by: RankBy,
    out_keys: &mut [u64],
    out_ptrs: &mut [u64],
) {
    debug_assert_eq!(runs.len(), lo.len());
    debug_assert_eq!(runs.len(), hi.len());
    let mut pos: Vec<usize> = lo.to_vec();
    let mut o = 0usize;
    loop {
        // Count live runs; a single survivor finishes with a bulk copy
        // (the common tail case, and the entire body when k == 1).
        let mut live = 0usize;
        let mut last = 0usize;
        for (r, p) in pos.iter().enumerate() {
            if *p < hi[r] {
                live += 1;
                last = r;
            }
        }
        if live == 0 {
            break;
        }
        if live == 1 {
            let span = pos[last]..hi[last];
            let len = span.len();
            out_keys[o..o + len].copy_from_slice(&runs[last].keys[span.clone()]);
            out_ptrs[o..o + len].copy_from_slice(&runs[last].ptrs[span]);
            o += len;
            break;
        }
        // Linear min-scan over the k heads; `<` keeps the lowest run index
        // on ties, matching rank_split's run-order tie distribution.
        let mut best_run = usize::MAX;
        let mut best_val = u128::MAX;
        for (r, p) in pos.iter().enumerate() {
            if *p < hi[r] {
                let v = runs[r].value(*p, by);
                if best_run == usize::MAX || v < best_val {
                    best_run = r;
                    best_val = v;
                }
            }
        }
        out_keys[o] = runs[best_run].keys[pos[best_run]];
        out_ptrs[o] = runs[best_run].ptrs[pos[best_run]];
        pos[best_run] += 1;
        o += 1;
    }
    debug_assert_eq!(o, out_keys.len(), "span did not fill its output");
}

/// Whole-input k-way merge on a worker pool: plans `width` equal output
/// spans and merges them concurrently (every lane cooperates on the one
/// merge — no serial final round). `width <= 1` falls back to the serial
/// merge; the result is byte-identical either way.
///
/// # Panics
///
/// Panics if the output slices do not hold exactly the total run length.
pub fn merge_runs_pooled(
    pool: &sbx_pool::WorkerPool,
    width: usize,
    runs: &[Run<'_>],
    by: RankBy,
    out_keys: &mut [u64],
    out_ptrs: &mut [u64],
) {
    let total = out_keys.len();
    debug_assert_eq!(total, runs.iter().map(Run::len).sum::<usize>());
    let width = width.clamp(1, total.max(1));
    if width == 1 {
        merge_runs_serial(runs, by, out_keys, out_ptrs);
        return;
    }
    let cuts = plan_spans(runs, by, width);
    // sbx-lint: allow(raw-alloc, per-invocation span-job list of borrowed slices)
    let mut jobs: Vec<SpanJob<'_>> = Vec::with_capacity(width);
    {
        let (mut kr, mut pr) = (out_keys, out_ptrs);
        let mut done = 0usize;
        for p in 0..width {
            let next = span_rank(total, width, p + 1);
            let (kh, kt) = kr.split_at_mut(next - done);
            let (ph, pt) = pr.split_at_mut(next - done);
            jobs.push((cuts[p].clone(), cuts[p + 1].clone(), kh, ph));
            kr = kt;
            pr = pt;
            done = next;
        }
    }
    pool.run(
        width,
        |(lo, hi, ok, op): SpanJob<'_>| {
            merge_span(runs, &lo, &hi, by, ok, op);
        },
        jobs,
    );
}

/// One claimed output span: per-run lo/hi cuts plus the output slices the
/// worker fills.
type SpanJob<'a> = (Vec<usize>, Vec<usize>, &'a mut [u64], &'a mut [u64]);

/// Serial whole-input k-way merge (the oracle the parallel spans are
/// checked against, and the `width == 1` path of the kernels).
pub fn merge_runs_serial(runs: &[Run<'_>], by: RankBy, out_keys: &mut [u64], out_ptrs: &mut [u64]) {
    // sbx-lint: allow(raw-alloc, k span bounds; pair data stays in the caller's buffers)
    let lo = vec![0usize; runs.len()];
    // sbx-lint: allow(raw-alloc, k span bounds; pair data stays in the caller's buffers)
    let hi: Vec<usize> = runs.iter().map(Run::len).collect();
    merge_span(runs, &lo, &hi, by, out_keys, out_ptrs);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<'a>(keys: &'a [u64], ptrs: &'a [u64]) -> Run<'a> {
        Run { keys, ptrs }
    }

    #[test]
    fn rank_split_tiles_exactly_on_duplicates() {
        let ka = [1u64, 5, 5, 5, 9];
        let pa = [0u64, 1, 2, 3, 4];
        let kb = [5u64, 5, 7];
        let pb = [10u64, 11, 12];
        let runs = [run(&ka, &pa), run(&kb, &pb)];
        for d in 0..=8 {
            let s = rank_split(&runs, RankBy::Key, d);
            assert_eq!(s.iter().sum::<usize>(), d, "rank {d}");
            assert!(s[0] <= ka.len() && s[1] <= kb.len());
        }
        // Key ties at 5: run 0's three fives fill ranks 1..4 before run
        // 1's two fives at ranks 4..6.
        assert_eq!(rank_split(&runs, RankBy::Key, 4), vec![4, 0]);
        assert_eq!(rank_split(&runs, RankBy::Key, 5), vec![4, 1]);
    }

    #[test]
    fn merge_span_equals_serial_merge() {
        let ka = [1u64, 3, 3, 8];
        let pa = [1u64, 2, 3, 4];
        let kb = [2u64, 3, 9];
        let pb = [5u64, 6, 7];
        let kc = [3u64];
        let pc = [8u64];
        let runs = [run(&ka, &pa), run(&kb, &pb), run(&kc, &pc)];
        let total = 8;
        let mut want_k = vec![0u64; total];
        let mut want_p = vec![0u64; total];
        merge_runs_serial(&runs, RankBy::Key, &mut want_k, &mut want_p);
        // Stable left-wins ties: run a's 3s, then b's 3, then c's 3.
        assert_eq!(want_k, vec![1, 2, 3, 3, 3, 3, 8, 9]);
        assert_eq!(want_p, vec![1, 5, 2, 3, 6, 8, 4, 7]);

        for parts in 1..=6 {
            let cuts = plan_spans(&runs, RankBy::Key, parts);
            let mut got_k = vec![0u64; total];
            let mut got_p = vec![0u64; total];
            for p in 0..parts {
                let a = span_rank(total, parts, p);
                let b = span_rank(total, parts, p + 1);
                merge_span(
                    &runs,
                    &cuts[p],
                    &cuts[p + 1],
                    RankBy::Key,
                    &mut got_k[a..b],
                    &mut got_p[a..b],
                );
            }
            assert_eq!(got_k, want_k, "parts={parts}");
            assert_eq!(got_p, want_p, "parts={parts}");
        }
    }

    #[test]
    fn compound_order_ranks_by_pointer_within_equal_keys() {
        let ka = [4u64, 4];
        let pa = [9u64, 11];
        let kb = [4u64, 4];
        let pb = [8u64, 10];
        let runs = [run(&ka, &pa), run(&kb, &pb)];
        let mut out_k = vec![0u64; 4];
        let mut out_p = vec![0u64; 4];
        merge_runs_serial(&runs, RankBy::Compound, &mut out_k, &mut out_p);
        assert_eq!(out_p, vec![8, 9, 10, 11]);
        // And the rank split agrees with that order.
        assert_eq!(rank_split(&runs, RankBy::Compound, 2), vec![1, 1]);
    }

    #[test]
    fn empty_runs_and_zero_ranks_are_handled() {
        let empty: [u64; 0] = [];
        let ka = [2u64];
        let pa = [0u64];
        let runs = [run(&empty, &empty), run(&ka, &pa)];
        assert_eq!(rank_split(&runs, RankBy::Key, 0), vec![0, 0]);
        assert_eq!(rank_split(&runs, RankBy::Key, 1), vec![0, 1]);
        let mut k = vec![0u64; 1];
        let mut p = vec![0u64; 1];
        merge_runs_serial(&runs, RankBy::Key, &mut k, &mut p);
        assert_eq!(k, vec![2]);
    }

    #[test]
    fn extreme_values_survive_the_value_space_search() {
        let ka = [0u64, u64::MAX];
        let pa = [u64::MAX, u64::MAX];
        let kb = [u64::MAX];
        let pb = [0u64];
        let runs = [run(&ka, &pa), run(&kb, &pb)];
        let s = rank_split(&runs, RankBy::Compound, 2);
        assert_eq!(s.iter().sum::<usize>(), 2);
        // (MAX, 0) in run b sorts before (MAX, MAX) in run a.
        assert_eq!(s, vec![1, 1]);
    }
}

//! Figure 10: dynamic balancing of HBM capacity against DRAM bandwidth —
//! (a) under increasing ingestion rate and (b) under delayed watermarks.
//!
//! The machine's HBM is squeezed (16 MiB at harness scale) so the swept
//! ingestion rates cross the capacity knee: at low rates the KPA state
//! between watermarks fits in HBM, at high rates it overflows and the knob
//! must shed allocations to DRAM — exactly the regime the paper's balancer
//! is built for.

// sbx-lint: out-of-scope(raw-alloc, bench table; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench table; a failed run should abort loudly)
use sbx_engine::ops::AggKind;
use sbx_engine::{Engine, Pipeline, PipelineBuilder, RunConfig, RunReport};
use sbx_ingress::{KvSource, NicModel, SenderConfig};
use sbx_records::{Col, WindowSpec};
use sbx_simmem::MachineConfig;

use crate::table::{f1, f2, Table};

const CORES: u32 = 64;
const BUNDLE_ROWS: usize = 50_000;
/// Watermark rounds per run: fixed so every swept configuration gives the
/// balancer the same number of knob updates and endpoints compare pressure,
/// not sampling cadence.
const ROUNDS: usize = 10;
/// Window length in event ticks: 10 ms of event time, so that a 40 M rec/s
/// stream puts 400 k records in each window.
const WINDOW_TICKS: u64 = 10_000_000;

fn machine() -> MachineConfig {
    let mut m = MachineConfig::knl();
    // Harness-scale memory: 16 MiB of HBM, 4 GiB of DRAM. Sized so the
    // sweep crosses the capacity knee: the lowest ingestion rate fits
    // comfortably, the highest overflows HBM several times over.
    m.hbm.capacity_bytes = 16 << 20;
    m.dram.capacity_bytes = 4 << 30;
    m
}

fn pipeline() -> Pipeline {
    PipelineBuilder::new(WindowSpec::fixed(WINDOW_TICKS))
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::TopK(3))
        .build()
}

/// Watermark cadence for a given ingestion rate: the sender emits a
/// watermark every ~12.5 ms of event time, so faster streams put more
/// records (and more KPA state) between watermarks — the paper's Fig. 10a
/// mechanism.
pub fn paced_gap(rate_mrps: f64) -> usize {
    ((rate_mrps / 4.0) as usize).max(2)
}

/// Runs TopK at `rate_mrps` million records per event-second with
/// `bundles_per_watermark` watermark spacing, for [`ROUNDS`] watermark
/// rounds.
pub fn pressured_run(rate_mrps: f64, bundles_per_watermark: usize) -> RunReport {
    let bundles = bundles_per_watermark * ROUNDS;
    let cfg = RunConfig {
        machine: machine(),
        cores: CORES,
        // One worker thread: the knob trajectory asserted by the fig10
        // tests must not depend on host-contention-sensitive interleaving
        // of KPA placement decisions across pool workers.
        threads: 1,
        sender: SenderConfig {
            bundle_rows: BUNDLE_ROWS,
            bundles_per_watermark,
            nic: NicModel {
                name: "rate-controlled",
                payload_bytes_per_sec: rate_mrps * 1e6 * 24.0,
                per_bundle_overhead_ns: 0,
            },
        },
        ..RunConfig::default()
    };
    Engine::new(cfg)
        .run(
            KvSource::new(10, 100_000, (rate_mrps * 1e6) as u64).with_value_range(1_000_000),
            pipeline(),
            bundles,
        )
        .expect("run")
}

fn summarize(t: &mut Table, label: String, r: &RunReport) {
    let last = r.samples.last().expect("samples");
    let avg_dram: f64 =
        r.samples.iter().map(|s| s.dram_bw_gbps).sum::<f64>() / r.samples.len() as f64;
    t.row(vec![
        label,
        format!("{:.1}", (r.hbm_peak_used_bytes as f64) / (1 << 20) as f64),
        f1(100.0 * r.samples.iter().map(|s| s.hbm_usage).fold(0.0, f64::max)),
        f1(r.peak_dram_bw_gbps),
        f1(avg_dram),
        f2(last.k_low),
        f2(last.k_high),
    ]);
}

/// Regenerates both panels of Figure 10.
pub fn run() -> String {
    let mut a = Table::new(
        "Figure 10a: increasing ingestion rate (TopK, 16 MiB HBM at harness scale)",
        &[
            "Mrec/s",
            "HBM peak MiB",
            "HBM use %",
            "DRAM peak GB/s",
            "DRAM avg GB/s",
            "k_low",
            "k_high",
        ],
    );
    for rate in [20.0, 30.0, 40.0, 50.0, 60.0] {
        let r = pressured_run(rate, paced_gap(rate));
        summarize(&mut a, format!("{rate:.0}"), &r);
    }

    let mut b = Table::new(
        "Figure 10b: delaying watermark arrival (bundles between watermarks)",
        &[
            "bundles/wm",
            "HBM peak MiB",
            "HBM use %",
            "DRAM peak GB/s",
            "DRAM avg GB/s",
            "k_low",
            "k_high",
        ],
    );
    for gap in [5usize, 10, 15, 20, 25] {
        let r = pressured_run(40.0, gap);
        summarize(&mut b, gap.to_string(), &r);
    }

    let mut out = a.print();
    out.push_str(&b.print());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rising ingestion pressure must push the knob down (more KPAs to
    /// DRAM) — the arrows of Fig. 10a.
    #[test]
    fn knob_sheds_to_dram_under_pressure() {
        let low = pressured_run(20.0, paced_gap(20.0));
        let high = pressured_run(60.0, paced_gap(60.0));
        let knob = |r: &RunReport| {
            let s = r.samples.last().unwrap();
            s.k_low + s.k_high
        };
        assert!(
            knob(&high) < knob(&low) + 1e-9,
            "knob must not rise with pressure: low={} high={}",
            knob(&low),
            knob(&high)
        );
        assert!(knob(&high) < 2.0, "high pressure must move the knob");
        assert!(
            high.hbm_peak_used_bytes >= low.hbm_peak_used_bytes,
            "more records per window => more HBM demand"
        );
    }

    /// Delayed watermarks extend KPA lifespans and stress HBM capacity
    /// (Fig. 10b).
    #[test]
    fn delayed_watermarks_raise_hbm_pressure() {
        let short = pressured_run(40.0, 5);
        let long = pressured_run(40.0, 25);
        assert!(
            long.hbm_peak_used_bytes >= short.hbm_peak_used_bytes,
            "short={} long={}",
            short.hbm_peak_used_bytes,
            long.hbm_peak_used_bytes
        );
    }

    /// The engine survives the squeeze by spilling, and keeps average DRAM
    /// bandwidth within the hardware's capability.
    #[test]
    fn resources_stay_within_limits() {
        let r = pressured_run(60.0, 15);
        assert!(r.records_in > 0);
        let avg_dram: f64 =
            r.samples.iter().map(|s| s.dram_bw_gbps).sum::<f64>() / r.samples.len() as f64;
        assert!(avg_dram <= 80.0 * 1.1, "avg DRAM BW {avg_dram} too high");
        // HBM was genuinely under pressure in this regime.
        assert!(
            r.samples.iter().any(|s| s.hbm_usage > 0.5),
            "expected HBM pressure"
        );
    }
}

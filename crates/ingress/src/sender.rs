use std::sync::Arc;

use sbx_records::{RecordBundle, Watermark};
use sbx_simmem::{AllocError, MemEnv};

use crate::{NicModel, Source};

/// Configuration of a [`Sender`].
#[derive(Debug, Clone, Copy)]
pub struct SenderConfig {
    /// Records per bundle.
    pub bundle_rows: usize,
    /// A watermark is injected after this many bundles (paper Fig. 10b
    /// varies this to stress HBM capacity).
    pub bundles_per_watermark: usize,
    /// The modelled ingestion link.
    pub nic: NicModel,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            bundle_rows: 4096,
            bundles_per_watermark: 16,
            nic: NicModel::rdma_40g(),
        }
    }
}

/// One ingress arrival: a record bundle (with its simulated wire-transfer
/// time), a watermark, or a checkpoint barrier.
#[derive(Debug, Clone)]
pub enum IngressEvent {
    /// A bundle of records plus the nanoseconds its transfer occupied the
    /// NIC.
    Bundle(Arc<RecordBundle>, u64),
    /// A watermark promising no earlier timestamps will follow.
    Watermark(Watermark),
    /// A checkpoint barrier carrying its epoch number. Injected at the
    /// sender — the source of truth for replay offsets — so that a
    /// recovered run regenerates the identical event sequence.
    Barrier(u64),
}

/// The modelled Sender machine: pulls records from a [`Source`], batches
/// them into DRAM bundles at the NIC's payload rate, and injects watermarks.
///
/// The engine *pulls* events, which is how StreamBox-HBM applies back
/// pressure: when both HBM capacity and DRAM bandwidth are exhausted it
/// simply stops pulling (paper §5).
#[derive(Debug)]
pub struct Sender<S> {
    source: S,
    cfg: SenderConfig,
    env: MemEnv,
    bundles_sent: usize,
    since_watermark: usize,
    barrier_interval: Option<u64>,
    since_barrier: u64,
    next_epoch: u64,
    scratch: Vec<u64>,
}

impl<S: Source> Sender<S> {
    /// A sender feeding `env` from `source`.
    pub fn new(env: &MemEnv, source: S, cfg: SenderConfig) -> Self {
        assert!(cfg.bundle_rows > 0, "bundle_rows must be positive");
        assert!(
            cfg.bundles_per_watermark > 0,
            "bundles_per_watermark must be positive"
        );
        Sender {
            source,
            cfg,
            env: env.clone(),
            bundles_sent: 0,
            since_watermark: 0,
            barrier_interval: None,
            since_barrier: 0,
            next_epoch: 1,
            scratch: Vec::new(),
        }
    }

    /// Enables checkpoint barrier injection: a [`IngressEvent::Barrier`]
    /// is emitted after every `interval` bundles, with epochs counting up
    /// from 1. Barriers flow in-band, so the engine snapshots a consistent
    /// stream prefix; replaying the same source regenerates the identical
    /// barrier cadence.
    pub fn with_barriers(mut self, interval: u64) -> Self {
        assert!(interval > 0, "barrier interval must be positive");
        self.barrier_interval = Some(interval);
        self
    }

    /// The underlying source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Total bundles delivered so far.
    pub fn bundles_sent(&self) -> usize {
        self.bundles_sent
    }

    /// Produces the next ingress event.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when DRAM cannot hold a new bundle — the
    /// signal that the engine must drain before pulling again.
    pub fn next_event(&mut self) -> Result<IngressEvent, AllocError> {
        if self.since_watermark >= self.cfg.bundles_per_watermark {
            self.since_watermark = 0;
            return Ok(IngressEvent::Watermark(Watermark(
                self.source.low_watermark(),
            )));
        }
        if let Some(interval) = self.barrier_interval {
            if self.since_barrier >= interval {
                self.since_barrier = 0;
                let epoch = self.next_epoch;
                self.next_epoch += 1;
                return Ok(IngressEvent::Barrier(epoch));
            }
        }
        self.scratch.clear();
        self.source.fill(self.cfg.bundle_rows, &mut self.scratch);
        let bundle = RecordBundle::from_rows(&self.env, self.source.schema(), &self.scratch)?;
        let wire_ns = self.cfg.nic.transfer_ns(bundle.bytes() as u64);
        self.bundles_sent += 1;
        self.since_watermark += 1;
        self.since_barrier += 1;
        Ok(IngressEvent::Bundle(bundle, wire_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvSource;
    use sbx_simmem::MachineConfig;

    fn env() -> MemEnv {
        MemEnv::new(MachineConfig::knl().scaled(0.01))
    }

    #[test]
    fn sender_interleaves_bundles_and_watermarks() {
        let env = env();
        let cfg = SenderConfig {
            bundle_rows: 10,
            bundles_per_watermark: 3,
            nic: NicModel::unlimited(),
        };
        let mut s = Sender::new(&env, KvSource::new(1, 100, 1000), cfg);
        let mut kinds = Vec::new();
        for _ in 0..8 {
            match s.next_event().unwrap() {
                IngressEvent::Bundle(b, _) => {
                    assert_eq!(b.rows(), 10);
                    kinds.push('B');
                }
                IngressEvent::Watermark(_) => kinds.push('W'),
                IngressEvent::Barrier(_) => kinds.push('C'),
            }
        }
        assert_eq!(kinds, vec!['B', 'B', 'B', 'W', 'B', 'B', 'B', 'W']);
        assert_eq!(s.bundles_sent(), 6);
    }

    #[test]
    fn barriers_follow_their_cadence_and_replay_identically() {
        let env = env();
        let cfg = SenderConfig {
            bundle_rows: 10,
            bundles_per_watermark: 5,
            nic: NicModel::unlimited(),
        };
        let run = |seed: u64| {
            let mut s = Sender::new(&env, KvSource::new(seed, 100, 1000), cfg).with_barriers(2);
            let mut kinds = Vec::new();
            let mut epochs = Vec::new();
            for _ in 0..12 {
                match s.next_event().unwrap() {
                    IngressEvent::Bundle(..) => kinds.push('B'),
                    IngressEvent::Watermark(_) => kinds.push('W'),
                    IngressEvent::Barrier(e) => {
                        kinds.push('C');
                        epochs.push(e);
                    }
                }
            }
            (kinds, epochs)
        };
        let (kinds, epochs) = run(3);
        // Barrier after every 2 bundles; watermark after every 5.
        assert_eq!(
            kinds,
            vec!['B', 'B', 'C', 'B', 'B', 'C', 'B', 'W', 'B', 'C', 'B', 'B']
        );
        assert_eq!(epochs, vec![1, 2, 3]);
        // Same seed => byte-identical replay of the event sequence.
        assert_eq!(run(3), (kinds, epochs));
    }

    #[test]
    fn watermarks_never_exceed_generated_timestamps() {
        let env = env();
        let cfg = SenderConfig {
            bundle_rows: 50,
            bundles_per_watermark: 2,
            nic: NicModel::unlimited(),
        };
        let mut s = Sender::new(&env, KvSource::new(9, 50, 500).with_jitter(10_000), cfg);
        let mut last_wm = 0u64;
        for _ in 0..20 {
            match s.next_event().unwrap() {
                IngressEvent::Watermark(wm) => last_wm = wm.time().raw(),
                IngressEvent::Bundle(b, _) => {
                    for r in 0..b.rows() {
                        assert!(
                            b.ts(r).raw() >= last_wm,
                            "record violated watermark promise"
                        );
                    }
                }
                IngressEvent::Barrier(_) => {}
            }
        }
    }

    #[test]
    fn wire_time_reflects_nic_rate() {
        let env = env();
        let cfg = SenderConfig {
            bundle_rows: 1000,
            bundles_per_watermark: 100,
            nic: NicModel::ethernet_10g(),
        };
        let mut s = Sender::new(&env, KvSource::new(1, 100, 1000), cfg);
        let IngressEvent::Bundle(b, wire) = s.next_event().unwrap() else {
            panic!("expected bundle");
        };
        let expect = NicModel::ethernet_10g().transfer_ns(b.bytes() as u64);
        assert_eq!(wire, expect);
    }

    #[test]
    fn dram_exhaustion_surfaces_as_error() {
        let mut machine = MachineConfig::knl();
        machine.dram.capacity_bytes = 8 * 1024; // one small bundle at most
        let env = MemEnv::new(machine);
        let cfg = SenderConfig {
            bundle_rows: 4096,
            bundles_per_watermark: 100,
            nic: NicModel::unlimited(),
        };
        let mut s = Sender::new(&env, KvSource::new(1, 100, 1000), cfg);
        assert!(s.next_event().is_err());
    }
}

//! Metrics registry: named counters, gauges, histograms and row series.
//!
//! A [`MetricsRegistry`] is either *active* (backed by shared atomics) or a
//! *no-op* (`MetricsRegistry::noop()`, the default). Handles taken from a
//! no-op registry are inert and allocation-free, so instrumented code paths
//! pay only a branch when observability is off. Registries and handles are
//! cheap `Arc` clones and safe to share across threads.
//!
//! All timestamps recorded through the registry are *simulated* time values
//! supplied by the caller — the registry never reads a clock, keeping
//! exports deterministic (see DESIGN.md §10).

// sbx-lint: out-of-scope(atomic-ordering, counter module; relaxed increments are aggregated at export time)
// sbx-lint: out-of-scope(raw-alloc, metrics registry and export; off the simulated data path)
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{HistCore, HistSnapshot, Histogram};
use crate::json::{fmt_f64, parse_flat_object, write_str, JsonValue};
use crate::sync::lock;

/// A monotonically increasing `u64` counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// An inert handle: adding does nothing.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// True if this handle discards all increments.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for no-op handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Acquire))
    }
}

#[derive(Debug)]
pub(crate) struct GaugeCore {
    /// f64 bit pattern of the last set value.
    value: AtomicU64,
    /// f64 bit pattern of the running maximum; -inf until first set.
    max: AtomicU64,
    sets: AtomicU64,
}

impl GaugeCore {
    fn new() -> Self {
        GaugeCore {
            value: AtomicU64::new(0f64.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            sets: AtomicU64::new(0),
        }
    }
}

/// An `f64` gauge handle that also tracks its high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCore>>);

impl Gauge {
    /// An inert handle: setting does nothing.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// True if this handle discards all sets.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Sets the gauge, updating the running maximum.
    pub fn set(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.value.store(v.to_bits(), Ordering::Release);
            core.sets.fetch_add(1, Ordering::Relaxed);
            let mut cur = core.max.load(Ordering::Relaxed);
            while f64::from_bits(cur) < v {
                match core.max.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(observed) => cur = observed,
                }
            }
        }
    }

    /// Last set value (0.0 if never set or no-op).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.value.load(Ordering::Acquire)))
    }

    /// Maximum value ever set (0.0 if never set or no-op).
    pub fn max(&self) -> f64 {
        match &self.0 {
            Some(core) if core.sets.load(Ordering::Acquire) > 0 => {
                f64::from_bits(core.max.load(Ordering::Acquire))
            }
            _ => 0.0,
        }
    }
}

#[derive(Debug)]
pub(crate) struct SeriesCore {
    fields: Vec<String>,
    rows: Mutex<Vec<Vec<f64>>>,
}

/// A handle to a time-series of fixed-width `f64` rows (e.g. one row per
/// engine round). Field names are fixed at creation.
#[derive(Debug, Clone, Default)]
pub struct Series(pub(crate) Option<Arc<SeriesCore>>);

impl Series {
    /// An inert handle: pushing does nothing.
    pub fn noop() -> Self {
        Series(None)
    }

    /// True if this handle discards all rows.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Appends one row. Shorter rows are zero-padded, longer rows truncated
    /// to the series width.
    pub fn push(&self, row: &[f64]) {
        if let Some(core) = &self.0 {
            let mut fixed = vec![0.0; core.fields.len()];
            for (dst, src) in fixed.iter_mut().zip(row.iter()) {
                *dst = *src;
            }
            lock(&core.rows).push(fixed);
        }
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |c| lock(&c.rows).len())
    }

    /// True if no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCore>>>,
    hists: Mutex<BTreeMap<String, Arc<HistCore>>>,
    series: Mutex<BTreeMap<String, Arc<SeriesCore>>>,
}

/// The metrics registry. `Default` is the no-op registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// A no-op registry: every handle it returns is inert.
    pub fn noop() -> Self {
        MetricsRegistry { inner: None }
    }

    /// An active registry backed by shared atomics.
    pub fn active() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// True if this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns the counter registered under `name`, creating it if needed.
    /// Handles for the same name share one cell.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.counters)
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Returns the gauge registered under `name`, creating it if needed.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.gauges)
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(GaugeCore::new())),
            )
        }))
    }

    /// Returns the histogram registered under `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.hists)
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(HistCore::new())),
            )
        }))
    }

    /// Returns the series registered under `name`, creating it with the given
    /// field names if needed (an existing series keeps its original fields).
    pub fn series(&self, name: &str, fields: &[&str]) -> Series {
        Series(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.series)
                    .entry(name.to_owned())
                    .or_insert_with(|| {
                        Arc::new(SeriesCore {
                            fields: fields.iter().map(|f| (*f).to_owned()).collect(),
                            rows: Mutex::new(Vec::new()),
                        })
                    }),
            )
        }))
    }

    /// A bounded copy of the last `last_n` rows of the series named
    /// `name`, or `None` when the registry is a no-op or the series does
    /// not exist. Detectors and the flight recorder use this to read a
    /// recent suffix without cloning a whole run's row history (as
    /// [`MetricsRegistry::snapshot`] would).
    pub fn series_window(&self, name: &str, last_n: usize) -> Option<SeriesDump> {
        let inner = self.inner.as_ref()?;
        let core = Arc::clone(lock(&inner.series).get(name)?);
        let rows = lock(&core.rows);
        let start = rows.len().saturating_sub(last_n);
        Some(SeriesDump {
            name: name.to_owned(),
            fields: core.fields.clone(),
            rows: rows[start..].to_vec(),
        })
    }

    /// A point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsDump {
        let mut dump = MetricsDump::default();
        let Some(inner) = &self.inner else {
            return dump;
        };
        for (name, cell) in lock(&inner.counters).iter() {
            dump.counters
                .push((name.clone(), cell.load(Ordering::Acquire)));
        }
        for (name, core) in lock(&inner.gauges).iter() {
            let sets = core.sets.load(Ordering::Acquire);
            dump.gauges.push(GaugeDump {
                name: name.clone(),
                value: f64::from_bits(core.value.load(Ordering::Acquire)),
                max: if sets == 0 {
                    0.0
                } else {
                    f64::from_bits(core.max.load(Ordering::Acquire))
                },
            });
        }
        for (name, core) in lock(&inner.hists).iter() {
            dump.histograms.push(HistogramDump {
                name: name.clone(),
                snapshot: core.snapshot(),
            });
        }
        for (name, core) in lock(&inner.series).iter() {
            dump.series.push(SeriesDump {
                name: name.clone(),
                fields: core.fields.clone(),
                rows: lock(&core.rows).clone(),
            });
        }
        dump
    }

    /// Exports every instrument as JSONL (one flat JSON object per line),
    /// deterministically ordered by instrument kind then name.
    pub fn export_jsonl(&self) -> String {
        self.snapshot().to_jsonl()
    }

    /// Folds another registry's exported instruments into this one under
    /// `prefix` (`prefix` + name). Counter values accumulate, gauges are
    /// re-set (then re-set to their max so the high-water mark survives),
    /// histogram snapshots are absorbed bucket-for-bucket, and series rows
    /// are appended. Used by the cluster tier to merge per-shard engine
    /// registries into one cluster-wide export
    /// (`cluster.shard0.engine.records_in`, ...), so per-shard delay
    /// quantiles and round series survive into the cluster dump.
    pub fn adopt(&self, prefix: &str, dump: &MetricsDump) {
        if self.inner.is_none() {
            return;
        }
        for (name, value) in &dump.counters {
            self.counter(&format!("{prefix}{name}")).add(*value);
        }
        for g in &dump.gauges {
            let gauge = self.gauge(&format!("{prefix}{}", g.name));
            // Setting the max first raises the high-water mark; the second
            // set restores the last observed value.
            gauge.set(g.max);
            gauge.set(g.value);
        }
        for h in &dump.histograms {
            self.histogram(&format!("{prefix}{}", h.name))
                .absorb(&h.snapshot);
        }
        for s in &dump.series {
            let fields: Vec<&str> = s.fields.iter().map(String::as_str).collect();
            let series = self.series(&format!("{prefix}{}", s.name), &fields);
            for row in &s.rows {
                series.push(row);
            }
        }
    }
}

/// An exported gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeDump {
    /// Instrument name.
    pub name: String,
    /// Last set value.
    pub value: f64,
    /// Maximum value ever set.
    pub max: f64,
}

/// An exported histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDump {
    /// Instrument name.
    pub name: String,
    /// The histogram state.
    pub snapshot: HistSnapshot,
}

/// An exported series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDump {
    /// Instrument name.
    pub name: String,
    /// Field names, in row order.
    pub fields: Vec<String>,
    /// Rows, each `fields.len()` wide.
    pub rows: Vec<Vec<f64>>,
}

impl SeriesDump {
    /// Index of a field by name.
    pub fn field_index(&self, field: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == field)
    }
}

/// A parsed or snapshotted set of instruments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDump {
    /// `(name, value)` counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, ascending by name.
    pub gauges: Vec<GaugeDump>,
    /// Histograms, ascending by name.
    pub histograms: Vec<HistogramDump>,
    /// Series, ascending by name.
    pub series: Vec<SeriesDump>,
}

impl MetricsDump {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeDump> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramDump> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&SeriesDump> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Serializes the dump as JSONL, one flat object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_str(name, &mut out);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push_str("}\n");
        }
        for g in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            write_str(&g.name, &mut out);
            out.push_str(",\"value\":");
            out.push_str(&fmt_f64(g.value));
            out.push_str(",\"max\":");
            out.push_str(&fmt_f64(g.max));
            out.push_str("}\n");
        }
        for h in &self.histograms {
            let s = &h.snapshot;
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_str(&h.name, &mut out);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}",
                s.count,
                fmt_f64(s.sum),
                fmt_f64(s.min),
                fmt_f64(s.max),
                fmt_f64(s.quantile(0.5)),
                fmt_f64(s.quantile(0.9)),
                fmt_f64(s.quantile(0.95)),
                fmt_f64(s.quantile(0.99)),
            ));
            out.push_str(",\"buckets\":");
            let encoded: Vec<String> = s.buckets.iter().map(|(i, c)| format!("{i}:{c}")).collect();
            write_str(&encoded.join(";"), &mut out);
            out.push_str("}\n");
        }
        for s in &self.series {
            for (row_idx, row) in s.rows.iter().enumerate() {
                out.push_str("{\"type\":\"series\",\"name\":");
                write_str(&s.name, &mut out);
                out.push_str(&format!(",\"row\":{row_idx}"));
                for (field, value) in s.fields.iter().zip(row.iter()) {
                    out.push(',');
                    write_str(field, &mut out);
                    out.push(':');
                    out.push_str(&fmt_f64(*value));
                }
                out.push_str("}\n");
            }
        }
        out
    }

    /// Parses a JSONL export produced by [`MetricsDump::to_jsonl`].
    ///
    /// Values round-trip exactly: `f64`s are emitted in shortest
    /// round-tripping form and re-parsed bit-for-bit.
    pub fn parse_jsonl(text: &str) -> Result<MetricsDump, String> {
        let mut dump = MetricsDump::default();
        for (line_no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let pairs =
                parse_flat_object(line).map_err(|e| format!("line {}: {e}", line_no + 1))?;
            let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let kind = get("type").and_then(JsonValue::as_str).unwrap_or("");
            let name = get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {}: missing name", line_no + 1))?
                .to_owned();
            let num = |key: &str| get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            match kind {
                "counter" => dump.counters.push((name, num("value") as u64)),
                "gauge" => dump.gauges.push(GaugeDump {
                    name,
                    value: num("value"),
                    max: num("max"),
                }),
                "histogram" => {
                    let mut buckets = Vec::new();
                    let encoded = get("buckets").and_then(JsonValue::as_str).unwrap_or("");
                    for part in encoded.split(';').filter(|p| !p.is_empty()) {
                        let (idx, count) = part
                            .split_once(':')
                            .ok_or_else(|| format!("line {}: bad bucket {part:?}", line_no + 1))?;
                        buckets.push((
                            idx.parse::<usize>()
                                .map_err(|e| format!("bad bucket idx: {e}"))?,
                            count
                                .parse::<u64>()
                                .map_err(|e| format!("bad bucket count: {e}"))?,
                        ));
                    }
                    dump.histograms.push(HistogramDump {
                        name,
                        snapshot: HistSnapshot {
                            count: num("count") as u64,
                            sum: num("sum"),
                            min: num("min"),
                            max: num("max"),
                            buckets,
                        },
                    });
                }
                "series" => {
                    let fields: Vec<(String, f64)> = pairs
                        .iter()
                        .filter(|(k, _)| k != "type" && k != "name" && k != "row")
                        .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                        .collect();
                    let idx = match dump.series.iter().position(|s| s.name == name) {
                        Some(i) => i,
                        None => {
                            dump.series.push(SeriesDump {
                                name,
                                fields: fields.iter().map(|(k, _)| k.clone()).collect(),
                                rows: Vec::new(),
                            });
                            dump.series.len() - 1
                        }
                    };
                    let Some(entry) = dump.series.get_mut(idx) else {
                        continue;
                    };
                    let row: Vec<f64> = entry
                        .fields
                        .iter()
                        .map(|field| {
                            fields
                                .iter()
                                .find(|(k, _)| k == field)
                                .map_or(0.0, |(_, v)| *v)
                        })
                        .collect();
                    entry.rows.push(row);
                }
                other => return Err(format!("line {}: unknown type {other:?}", line_no + 1)),
            }
        }
        Ok(dump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_registry_handles_are_inert() {
        let reg = MetricsRegistry::noop();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z");
        let s = reg.series("t", &["a"]);
        assert!(c.is_noop() && g.is_noop() && h.is_noop() && s.is_noop());
        c.add(5);
        g.set(1.0);
        h.record(1.0);
        s.push(&[1.0]);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(s.len(), 0);
        assert_eq!(reg.snapshot(), MetricsDump::default());
        assert!(reg.export_jsonl().is_empty());
    }

    #[test]
    fn same_name_handles_share_one_cell() {
        let reg = MetricsRegistry::active();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counter("hits"), Some(3));
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let reg = MetricsRegistry::active();
        let g = reg.gauge("hbm.used");
        assert_eq!(g.max(), 0.0);
        g.set(5.0);
        g.set(9.0);
        g.set(2.0);
        assert_eq!(g.get(), 2.0);
        assert_eq!(g.max(), 9.0);
        // A gauge only ever set negative still reports its true max.
        let n = reg.gauge("neg");
        n.set(-3.0);
        n.set(-7.0);
        assert_eq!(n.max(), -3.0);
    }

    #[test]
    fn export_parses_back_bit_exact() {
        let reg = MetricsRegistry::active();
        reg.counter("engine.bundles").add(42);
        let g = reg.gauge("bw.dram_gbps");
        g.set(17.25);
        g.set(3.5);
        let h = reg.histogram("delay_secs");
        h.record(0.125);
        h.record_n(0.7, 3);
        let s = reg.series("engine.round", &["at_secs", "hbm_usage"]);
        s.push(&[0.1, 0.333333333333]);
        s.push(&[0.2, 1.0 / 3.0]);

        let exported = reg.export_jsonl();
        let parsed = MetricsDump::parse_jsonl(&exported).unwrap();
        assert_eq!(parsed, reg.snapshot());
        // Re-export of the parsed dump is byte-identical.
        assert_eq!(parsed.to_jsonl(), exported);
        // f64 fields round-trip bit-exact.
        let row = &parsed.series("engine.round").unwrap().rows[1];
        assert_eq!(row[1].to_bits(), (1.0f64 / 3.0).to_bits());
        let hd = parsed.histogram("delay_secs").unwrap();
        assert_eq!(hd.snapshot.sum.to_bits(), (0.125f64 + 0.7 * 3.0).to_bits());
    }

    #[test]
    fn adopt_carries_histograms_and_series_under_prefix() {
        let shard = MetricsRegistry::active();
        shard.counter("records_in").add(10);
        let g = shard.gauge("hbm.used");
        g.set(9.0);
        g.set(2.0);
        let h = shard.histogram("engine.output_delay_secs");
        h.record(0.125);
        h.record_n(0.7, 3);
        let s = shard.series("engine.round", &["at_secs", "hbm_usage"]);
        s.push(&[0.1, 0.5]);
        s.push(&[0.2, 1.0 / 3.0]);

        let cluster = MetricsRegistry::active();
        cluster.adopt("cluster.shard0.engine.", &shard.snapshot());
        let dump = cluster.snapshot();

        assert_eq!(dump.counter("cluster.shard0.engine.records_in"), Some(10));
        let adopted_gauge = dump.gauge("cluster.shard0.engine.hbm.used").unwrap();
        assert_eq!(adopted_gauge.value, 2.0);
        assert_eq!(adopted_gauge.max, 9.0, "high-water mark survives adoption");
        // The shard histogram round-trips exactly: count, bit-exact sum,
        // min/max and every bucket.
        let shard_h = shard.snapshot();
        let shard_h = &shard_h
            .histogram("engine.output_delay_secs")
            .unwrap()
            .snapshot;
        let adopted = dump
            .histogram("cluster.shard0.engine.engine.output_delay_secs")
            .unwrap();
        assert_eq!(adopted.snapshot.count, shard_h.count);
        assert_eq!(adopted.snapshot.sum.to_bits(), shard_h.sum.to_bits());
        assert_eq!(adopted.snapshot.min, shard_h.min);
        assert_eq!(adopted.snapshot.max, shard_h.max);
        assert_eq!(adopted.snapshot.buckets, shard_h.buckets);
        // Series rows and fields survive with the prefix.
        let adopted_s = dump.series("cluster.shard0.engine.engine.round").unwrap();
        assert_eq!(adopted_s.fields, vec!["at_secs", "hbm_usage"]);
        assert_eq!(adopted_s.rows.len(), 2);
        assert_eq!(adopted_s.rows[1][1].to_bits(), (1.0f64 / 3.0).to_bits());
        // And the adopted dump still round-trips through JSONL bit-exact.
        let exported = cluster.export_jsonl();
        assert_eq!(MetricsDump::parse_jsonl(&exported).unwrap(), dump);
    }

    #[test]
    fn series_rows_are_fixed_width() {
        let reg = MetricsRegistry::active();
        let s = reg.series("t", &["a", "b"]);
        s.push(&[1.0]);
        s.push(&[1.0, 2.0, 3.0]);
        let dump = reg.snapshot();
        let rows = &dump.series("t").unwrap().rows;
        assert_eq!(rows[0], vec![1.0, 0.0]);
        assert_eq!(rows[1], vec![1.0, 2.0]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(MetricsDump::parse_jsonl("{\"type\":\"counter\"}").is_err());
        assert!(MetricsDump::parse_jsonl("{\"type\":\"bogus\",\"name\":\"x\"}").is_err());
        assert!(MetricsDump::parse_jsonl("not json").is_err());
        assert!(MetricsDump::parse_jsonl("\n\n")
            .unwrap()
            .counters
            .is_empty());
    }
}

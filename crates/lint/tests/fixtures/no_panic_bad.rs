//! Fixture: panic paths in engine code. Expected findings: 3 × no-panic.

pub fn claim(slot: &mut Option<Task>) -> Task {
    let t = slot.take().expect("task claimed twice");
    if t.done() {
        panic!("claiming a finished task");
    }
    t.check().unwrap()
}

//! The in-cache block sort kernel: a bitonic sorting network over blocks of
//! 64 key/pointer pairs.
//!
//! The paper's chunk sort "splits the chunk into blocks of 64x 64-bit
//! integers, invoking a bitonic sort on each block, and then performing a
//! bitonic merge" (§4.2), with the compare-exchanges implemented in
//! AVX-512. This module implements the same network shape in scalar Rust:
//! `log2(64) * (log2(64)+1) / 2 = 21` compare-exchange stages of 32 lanes
//! each, data-independent and branch-predictable — exactly the structure a
//! vectorizing compiler (or hand-written SIMD) exploits.
//!
//! All comparisons use the *compound* `(key, ptr)` order — the canonical
//! total order `Kpa::sort` sorts in — so chunk sorting commutes with
//! chunking: any partition of the input into chunks, sorted and k-way
//! merged in compound order, yields the same byte-identical array. That
//! property is what makes the merge-path sort deterministic across thread
//! counts (see `mergepath`).

/// Pairs per bitonic block (matches `profile::SORT_BLOCK`).
pub const BLOCK: usize = 64;

/// Sorts one `BLOCK`-sized block of parallel key/pointer arrays in place
/// with the bitonic network.
///
/// # Panics
///
/// Panics if the slices are not exactly [`BLOCK`] long.
pub fn sort_block(keys: &mut [u64], ptrs: &mut [u64]) {
    assert_eq!(keys.len(), BLOCK, "bitonic kernel requires a full block");
    assert_eq!(ptrs.len(), BLOCK, "bitonic kernel requires a full block");
    // Standard iterative bitonic network: k = subsequence size,
    // j = compare distance.
    let mut k = 2;
    while k <= BLOCK {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..BLOCK {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    let (a, b) = ((keys[i], ptrs[i]), (keys[l], ptrs[l]));
                    if (ascending && a > b) || (!ascending && a < b) {
                        keys.swap(i, l);
                        ptrs.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Sorts a chunk of any length: full blocks through the bitonic network,
/// the ragged tail with insertion sort, then iterative pairwise merges of
/// the sorted runs (the block-level "bitonic merge" phase).
pub fn sort_chunk(keys: &mut [u64], ptrs: &mut [u64]) {
    let n = keys.len();
    debug_assert_eq!(n, ptrs.len());
    if n <= 1 {
        return;
    }

    // Phase 1: sort runs of BLOCK.
    let full_blocks = n / BLOCK;
    for b in 0..full_blocks {
        let r = b * BLOCK..(b + 1) * BLOCK;
        sort_block(&mut keys[r.clone()], &mut ptrs[r]);
    }
    let tail = full_blocks * BLOCK;
    insertion_sort(&mut keys[tail..], &mut ptrs[tail..]);

    // Phase 2: merge runs pairwise until one remains.
    let mut run = BLOCK;
    // sbx-lint: allow(raw-alloc, baseline sorter scratch; the engine path Kpa::sort uses pool buffers)
    let mut sk: Vec<u64> = Vec::with_capacity(n);
    // sbx-lint: allow(raw-alloc, baseline sorter scratch; the engine path Kpa::sort uses pool buffers)
    let mut sp: Vec<u64> = Vec::with_capacity(n);
    while run < n {
        let mut start = 0;
        while start + run < n {
            let mid = start + run;
            let end = (start + 2 * run).min(n);
            merge_in_place(keys, ptrs, start, mid, end, &mut sk, &mut sp);
            start = end;
        }
        run *= 2;
    }
}

fn insertion_sort(keys: &mut [u64], ptrs: &mut [u64]) {
    for i in 1..keys.len() {
        let (k, p) = (keys[i], ptrs[i]);
        let mut j = i;
        while j > 0 && (keys[j - 1], ptrs[j - 1]) > (k, p) {
            keys[j] = keys[j - 1];
            ptrs[j] = ptrs[j - 1];
            j -= 1;
        }
        keys[j] = k;
        ptrs[j] = p;
    }
}

/// Merges the sorted runs `[start, mid)` and `[mid, end)` using scratch.
fn merge_in_place(
    keys: &mut [u64],
    ptrs: &mut [u64],
    start: usize,
    mid: usize,
    end: usize,
    sk: &mut Vec<u64>,
    sp: &mut Vec<u64>,
) {
    sk.clear();
    sp.clear();
    let (mut i, mut j) = (start, mid);
    while i < mid && j < end {
        if (keys[i], ptrs[i]) <= (keys[j], ptrs[j]) {
            sk.push(keys[i]);
            sp.push(ptrs[i]);
            i += 1;
        } else {
            sk.push(keys[j]);
            sp.push(ptrs[j]);
            j += 1;
        }
    }
    sk.extend_from_slice(&keys[i..mid]);
    sp.extend_from_slice(&ptrs[i..mid]);
    sk.extend_from_slice(&keys[j..end]);
    sp.extend_from_slice(&ptrs[j..end]);
    keys[start..end].copy_from_slice(sk);
    ptrs[start..end].copy_from_slice(sp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_prng::SbxRng;

    fn check_sorted_with_ptrs(keys: &[u64], ptrs: &[u64], orig: &[(u64, u64)]) {
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys out of order");
        // Same multiset of (key, ptr) pairs.
        let mut got: Vec<(u64, u64)> = keys.iter().copied().zip(ptrs.iter().copied()).collect();
        let mut expect = orig.to_vec();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bitonic_block_sorts_all_permutation_shapes() {
        let mut rng = SbxRng::seed_from_u64(7);
        for case in 0..50 {
            let mut keys: Vec<u64> = match case % 4 {
                0 => (0..BLOCK as u64).rev().collect(),
                1 => vec![42; BLOCK],
                2 => (0..BLOCK as u64).collect(),
                _ => (0..BLOCK).map(|_| rng.random_range(0..1000)).collect(),
            };
            let mut ptrs: Vec<u64> = (0..BLOCK as u64).collect();
            let orig: Vec<(u64, u64)> = keys.iter().copied().zip(ptrs.iter().copied()).collect();
            sort_block(&mut keys, &mut ptrs);
            check_sorted_with_ptrs(&keys, &ptrs, &orig);
        }
    }

    #[test]
    fn chunk_sort_handles_every_length_class() {
        let mut rng = SbxRng::seed_from_u64(8);
        for n in [0usize, 1, 2, 63, 64, 65, 127, 128, 129, 1000, 4096, 5000] {
            let mut keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..500)).collect();
            let mut ptrs: Vec<u64> = (0..n as u64).collect();
            let orig: Vec<(u64, u64)> = keys.iter().copied().zip(ptrs.iter().copied()).collect();
            sort_chunk(&mut keys, &mut ptrs);
            check_sorted_with_ptrs(&keys, &ptrs, &orig);
        }
    }

    #[test]
    fn extreme_keys_survive_the_network() {
        let mut keys = vec![u64::MAX; BLOCK];
        keys[3] = 0;
        keys[40] = 7;
        let mut ptrs: Vec<u64> = (0..BLOCK as u64).collect();
        let orig: Vec<(u64, u64)> = keys.iter().copied().zip(ptrs.iter().copied()).collect();
        sort_block(&mut keys, &mut ptrs);
        check_sorted_with_ptrs(&keys, &ptrs, &orig);
        assert_eq!(keys[0], 0);
        assert_eq!(keys[1], 7);
    }

    #[test]
    #[should_panic(expected = "full block")]
    fn partial_blocks_are_rejected() {
        let mut k = vec![1u64; 10];
        let mut p = vec![0u64; 10];
        sort_block(&mut k, &mut p);
    }
}

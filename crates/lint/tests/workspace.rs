//! The workspace-wide gate: `cargo test` fails if any source file or
//! manifest in the repository violates an sbx-lint rule. This is the same
//! check `cargo run -p sbx-lint` performs from the command line.

use sbx_lint::{lint_workspace, workspace_root};

#[test]
fn workspace_has_no_lint_findings() {
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("lint walk failed");
    assert!(
        findings.is_empty(),
        "sbx-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Bounded deterministic schedule explorer (loom-lite).
//!
//! The sbx-pool wave protocol is a small concurrent state machine: a
//! caller deals jobs to lanes, each lane claims and completes jobs, and
//! the caller collects results in back-channel arrival order. Instead of
//! running real threads and hoping a race shows up, a test expresses the
//! protocol as a [`ScheduleModel`] — a *cloneable* value whose `step`
//! advances one lane by one atomic protocol action — and [`explore`]
//! enumerates every interleaving of lane steps up to a bound, invoking a
//! verifier on each completed schedule.
//!
//! Because the model (including any embedded [`crate::ShadowTable`]) is a
//! plain `Clone` value, each branch of the depth-first search forks its
//! own copy: no locks, no global state, perfectly deterministic.

/// A cloneable concurrent-protocol model explored by [`explore`].
///
/// `Clone` must deep-copy the whole model state: every DFS branch forks
/// the model and advances its copy independently.
pub trait ScheduleModel: Clone {
    /// Lanes that can take a step from the current state. Must be empty
    /// once [`is_done`](Self::is_done) returns true; a non-done state
    /// with no enabled lanes is reported as a deadlock.
    fn enabled_lanes(&self) -> Vec<usize>;

    /// Advances `lane` by one atomic protocol action. Only called with a
    /// lane previously returned by [`enabled_lanes`](Self::enabled_lanes).
    fn step(&mut self, lane: usize);

    /// True once the protocol has run to completion.
    fn is_done(&self) -> bool;
}

/// Bounds for [`explore`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum number of complete schedules to enumerate before
    /// truncating the search (reported via [`ExploreReport::truncated`]).
    pub max_schedules: u64,
    /// Maximum steps along any single schedule; exceeding it is reported
    /// as a failure (a livelocked model would otherwise never terminate).
    pub max_depth: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 100_000,
            max_depth: 4096,
        }
    }
}

/// Outcome of an [`explore`] run.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Complete schedules enumerated.
    pub schedules: u64,
    /// True if the search hit [`ExploreConfig::max_schedules`] before
    /// exhausting the interleaving space.
    pub truncated: bool,
    /// Human-readable failures: verifier rejections, deadlocks, and
    /// depth overruns, each tagged with the schedule (lane trace) that
    /// produced it. Capped at 16 entries.
    pub failures: Vec<String>,
}

impl ExploreReport {
    /// True when the exploration completed without truncation and every
    /// schedule passed verification.
    pub fn is_clean(&self) -> bool {
        !self.truncated && self.failures.is_empty()
    }
}

const MAX_FAILURES: usize = 16;

/// Exhaustively enumerates lane interleavings of `seed` (bounded by
/// `cfg`), calling `verify` on every completed model. `verify` returns
/// `Err(reason)` to record a failure for that schedule.
pub fn explore<M, V>(seed: &M, cfg: ExploreConfig, mut verify: V) -> ExploreReport
where
    M: ScheduleModel,
    V: FnMut(&M) -> Result<(), String>,
{
    let mut report = ExploreReport::default();
    let mut trace: Vec<usize> = Vec::new();
    dfs(seed, &cfg, &mut verify, &mut report, &mut trace);
    report
}

fn dfs<M, V>(
    model: &M,
    cfg: &ExploreConfig,
    verify: &mut V,
    report: &mut ExploreReport,
    trace: &mut Vec<usize>,
) where
    M: ScheduleModel,
    V: FnMut(&M) -> Result<(), String>,
{
    if report.truncated {
        return;
    }
    if model.is_done() {
        report.schedules += 1;
        if report.schedules >= cfg.max_schedules {
            report.truncated = true;
        }
        if let Err(reason) = verify(model) {
            fail(report, trace, &reason);
        }
        return;
    }
    if trace.len() >= cfg.max_depth {
        fail(report, trace, "max_depth exceeded (livelock?)");
        return;
    }
    let lanes = model.enabled_lanes();
    if lanes.is_empty() {
        fail(
            report,
            trace,
            "deadlock: no enabled lanes before completion",
        );
        return;
    }
    for lane in lanes {
        let mut next = model.clone();
        next.step(lane);
        trace.push(lane);
        dfs(&next, cfg, verify, report, trace);
        trace.pop();
        if report.truncated {
            return;
        }
    }
}

fn fail(report: &mut ExploreReport, trace: &[usize], reason: &str) {
    if report.failures.len() < MAX_FAILURES {
        report
            .failures
            .push(format!("schedule {trace:?}: {reason}"));
    }
}

/// Runs `seed` to completion along the canonical serial schedule (always
/// the lowest enabled lane) and returns the finished model. Useful as
/// the baseline for bit-identical-output assertions.
pub fn run_serial<M: ScheduleModel>(seed: &M, max_steps: usize) -> Option<M> {
    let mut m = seed.clone();
    let mut steps = 0usize;
    while !m.is_done() {
        let lanes = m.enabled_lanes();
        let lane = *lanes.first()?;
        m.step(lane);
        steps += 1;
        if steps > max_steps {
            return None;
        }
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two lanes each append their id `per_lane` times to a shared log.
    #[derive(Clone)]
    struct Interleave {
        remaining: [usize; 2],
        log: Vec<usize>,
    }

    impl ScheduleModel for Interleave {
        fn enabled_lanes(&self) -> Vec<usize> {
            (0..2).filter(|&l| self.remaining[l] > 0).collect()
        }
        fn step(&mut self, lane: usize) {
            self.remaining[lane] -= 1;
            self.log.push(lane);
        }
        fn is_done(&self) -> bool {
            self.remaining.iter().all(|&r| r == 0)
        }
    }

    #[test]
    fn enumerates_all_interleavings() {
        let seed = Interleave {
            remaining: [2, 2],
            log: Vec::new(),
        };
        let report = explore(&seed, ExploreConfig::default(), |m| {
            if m.log.len() == 4 {
                Ok(())
            } else {
                Err("wrong length".into())
            }
        });
        // C(4,2) = 6 interleavings of 2+2 steps.
        assert_eq!(report.schedules, 6);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn verifier_failures_carry_the_lane_trace() {
        let seed = Interleave {
            remaining: [1, 1],
            log: Vec::new(),
        };
        let report = explore(&seed, ExploreConfig::default(), |m| {
            if m.log == [0, 1] {
                Ok(())
            } else {
                Err("lane 1 ran first".into())
            }
        });
        assert_eq!(report.schedules, 2);
        assert_eq!(report.failures.len(), 1);
        assert!(
            report.failures[0].contains("[1, 0]"),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn truncation_is_reported() {
        let seed = Interleave {
            remaining: [3, 3],
            log: Vec::new(),
        };
        let cfg = ExploreConfig {
            max_schedules: 5,
            max_depth: 64,
        };
        let report = explore(&seed, cfg, |_| Ok(()));
        assert!(report.truncated);
        assert_eq!(report.schedules, 5);
    }

    #[derive(Clone)]
    struct Deadlocks {
        stepped: bool,
    }

    impl ScheduleModel for Deadlocks {
        fn enabled_lanes(&self) -> Vec<usize> {
            if self.stepped {
                Vec::new()
            } else {
                [0].to_vec()
            }
        }
        fn step(&mut self, _lane: usize) {
            self.stepped = true;
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn deadlock_is_a_failure() {
        let report = explore(
            &Deadlocks { stepped: false },
            ExploreConfig::default(),
            |_| Ok(()),
        );
        assert_eq!(report.schedules, 0);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("deadlock"));
    }

    #[test]
    fn run_serial_takes_lowest_lane() {
        let seed = Interleave {
            remaining: [2, 1],
            log: Vec::new(),
        };
        let done = run_serial(&seed, 100).expect("terminates");
        assert_eq!(done.log, [0, 0, 1]);
    }
}

use crate::{MachineConfig, MemKind};

/// Cache-line granularity charged per random access.
pub(crate) const LINE_BYTES: f64 = 64.0;

/// An instrumented description of the memory and compute work one primitive
/// execution performs.
///
/// Primitives in `sbx-kpa` build these from their input sizes; the
/// [`CostModel`] converts them into simulated time for a given core count.
/// Profiles are additive: summing profiles of sub-steps yields the profile
/// of the whole.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessProfile {
    /// Sequentially streamed bytes (reads + writes) per tier,
    /// indexed by [`MemKind::index`].
    pub seq_bytes: [f64; 2],
    /// Dependent random accesses (pointer dereferences, hash probes) per
    /// tier. Each access is charged one cache line and hides behind the
    /// machine's memory-level parallelism.
    pub rand_accesses: [f64; 2],
    /// CPU work in cycles (comparisons, hashing, arithmetic).
    pub cpu_cycles: f64,
}

impl AccessProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `bytes` of sequential traffic on `kind`; returns `self` for
    /// chaining.
    pub fn seq(mut self, kind: MemKind, bytes: f64) -> Self {
        self.seq_bytes[kind.index()] += bytes;
        self
    }

    /// Adds `accesses` random accesses on `kind`; returns `self`.
    pub fn rand(mut self, kind: MemKind, accesses: f64) -> Self {
        self.rand_accesses[kind.index()] += accesses;
        self
    }

    /// Adds CPU cycles; returns `self`.
    pub fn cpu(mut self, cycles: f64) -> Self {
        self.cpu_cycles += cycles;
        self
    }

    /// Component-wise sum of two profiles.
    pub fn merge(mut self, other: &AccessProfile) -> Self {
        for i in 0..2 {
            self.seq_bytes[i] += other.seq_bytes[i];
            self.rand_accesses[i] += other.rand_accesses[i];
        }
        self.cpu_cycles += other.cpu_cycles;
        self
    }

    /// Total bytes this profile moves on `kind` (sequential plus one line
    /// per random access) — what the [`crate::BandwidthMonitor`] is charged.
    pub fn bytes_on(&self, kind: MemKind) -> f64 {
        self.seq_bytes[kind.index()] + self.rand_accesses[kind.index()] * LINE_BYTES
    }
}

/// Analytic timing model for the hybrid-memory machine.
///
/// This encodes the empirical behaviour of §2.2 of the paper:
///
/// * **Sequential** traffic on a tier runs at
///   `min(cores × per-core stream rate, tier bandwidth)` — HBM only pays off
///   with high parallelism, and DRAM saturates at ~16 cores on KNL.
/// * **Random** accesses are latency-bound: each core sustains `mlp`
///   outstanding misses, so the aggregate random rate is
///   `cores × mlp / latency`, additionally capped by tier bandwidth at one
///   cache line per access. HBM's *higher* latency means random-access
///   workloads see almost no benefit from it — the paper's key observation.
/// * **Compute** runs at `cores × frequency` cycles per second.
///
/// A task's time is the maximum of the three components (perfect overlap),
/// which reproduces the bandwidth-bound / compute-bound crossovers in
/// Figure 2.
#[derive(Debug, Clone)]
pub struct CostModel {
    machine: MachineConfig,
}

impl CostModel {
    /// A cost model for `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        CostModel { machine }
    }

    /// The machine this model describes.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Aggregate sequential streaming rate on `kind` with `cores` cores,
    /// bytes per second.
    pub fn seq_rate(&self, kind: MemKind, cores: u32) -> f64 {
        let spec = self.machine.spec(kind);
        (cores as f64 * self.machine.per_core_stream_bytes_per_sec)
            .min(spec.bandwidth_bytes_per_sec)
    }

    /// Aggregate random-access rate on `kind` with `cores` cores, accesses
    /// per second.
    pub fn rand_rate(&self, kind: MemKind, cores: u32) -> f64 {
        let spec = self.machine.spec(kind);
        let latency_bound = cores as f64 * self.machine.mlp / (spec.latency_ns * 1e-9);
        let bw_bound = spec.bandwidth_bytes_per_sec / LINE_BYTES;
        latency_bound.min(bw_bound)
    }

    /// Aggregate compute rate with `cores` cores, cycles per second.
    pub fn cpu_rate(&self, cores: u32) -> f64 {
        cores as f64 * self.machine.core_ghz * 1e9
    }

    /// Simulated execution time of `profile` on `cores` cores, in seconds.
    ///
    /// Compute overlaps with memory, but within one tier sequential and
    /// random traffic serialize (they contend for the same channels), so a
    /// tier's delivered bandwidth never exceeds its hardware peak.
    pub fn time_secs(&self, profile: &AccessProfile, cores: u32) -> f64 {
        let cores = cores.max(1);
        let mut t: f64 = profile.cpu_cycles / self.cpu_rate(cores);
        for kind in MemKind::ALL {
            let i = kind.index();
            let mut kind_t = 0.0;
            if profile.seq_bytes[i] > 0.0 {
                kind_t += profile.seq_bytes[i] / self.seq_rate(kind, cores);
            }
            if profile.rand_accesses[i] > 0.0 {
                kind_t += profile.rand_accesses[i] / self.rand_rate(kind, cores);
            }
            t = t.max(kind_t);
        }
        t
    }

    /// Records per second for a job over `records` records, given its
    /// aggregate profile.
    pub fn throughput(&self, profile: &AccessProfile, cores: u32, records: u64) -> f64 {
        let t = self.time_secs(profile, cores);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            records as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    fn knl_model() -> CostModel {
        CostModel::new(MachineConfig::knl())
    }

    #[test]
    fn seq_rate_scales_then_saturates() {
        let m = knl_model();
        // 2 cores cannot tell HBM from DRAM apart (both core-limited).
        assert_eq!(m.seq_rate(MemKind::Hbm, 2), m.seq_rate(MemKind::Dram, 2));
        // DRAM saturates at its 80 GB/s well before 64 cores.
        assert_eq!(m.seq_rate(MemKind::Dram, 64), 80e9);
        // HBM keeps scaling much further.
        assert!(m.seq_rate(MemKind::Hbm, 64) > 3.0 * m.seq_rate(MemKind::Dram, 64));
    }

    #[test]
    fn random_access_prefers_lower_latency_dram() {
        let m = knl_model();
        // At low core counts random access is latency-bound, and DRAM's
        // lower latency wins: HBM shows no benefit (paper §2.2).
        assert!(m.rand_rate(MemKind::Dram, 8) > m.rand_rate(MemKind::Hbm, 8));
    }

    #[test]
    fn time_is_max_of_components() {
        let m = knl_model();
        let p = AccessProfile::new()
            .seq(MemKind::Dram, 80e9) // exactly 1 s of DRAM at saturation
            .cpu(1e9); // far less than 1 s of CPU at 64 cores
        let t = m.time_secs(&p, 64);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_cores_never_slower() {
        let m = knl_model();
        let p = AccessProfile::new()
            .seq(MemKind::Hbm, 1e9)
            .rand(MemKind::Dram, 1e6)
            .cpu(1e9);
        let mut last = f64::INFINITY;
        for cores in [2u32, 4, 8, 16, 32, 64] {
            let t = m.time_secs(&p, cores);
            assert!(t <= last + 1e-12, "time increased at {cores} cores");
            last = t;
        }
    }

    #[test]
    fn profile_builder_accumulates_and_merges() {
        let a = AccessProfile::new().seq(MemKind::Hbm, 100.0).cpu(5.0);
        let b = AccessProfile::new()
            .seq(MemKind::Hbm, 50.0)
            .rand(MemKind::Dram, 2.0);
        let c = a.merge(&b);
        assert_eq!(c.seq_bytes[MemKind::Hbm.index()], 150.0);
        assert_eq!(c.rand_accesses[MemKind::Dram.index()], 2.0);
        assert_eq!(c.cpu_cycles, 5.0);
        assert_eq!(c.bytes_on(MemKind::Dram), 2.0 * LINE_BYTES);
    }

    #[test]
    fn throughput_divides_records_by_time() {
        let m = knl_model();
        let p = AccessProfile::new().seq(MemKind::Dram, 80e9);
        let tput = m.throughput(&p, 64, 1_000_000);
        assert!((tput - 1e6).abs() / 1e6 < 1e-9);
    }

    #[test]
    fn zero_profile_is_infinitely_fast() {
        let m = knl_model();
        assert_eq!(m.time_secs(&AccessProfile::new(), 64), 0.0);
        assert!(m.throughput(&AccessProfile::new(), 64, 10).is_infinite());
    }
}

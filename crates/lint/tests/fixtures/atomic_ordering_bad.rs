// Bad: bare relaxed atomics outside a counter module — no happens-before
// edge, no justification.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::Relaxed)
}
